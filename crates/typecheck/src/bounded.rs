//! Bounded exhaustive typechecking — the cross-validation oracle.
//!
//! Enumerates input trees of `τ₁` up to a depth bound and checks each one
//! *exactly* via Proposition 3.8: `inst(A_t) ⊆ τ₂` is a regular-language
//! inclusion. Sound for counterexample finding; complete only up to the
//! bound. Used by property tests to validate the exact (unbounded)
//! pipeline, and available as a pragmatic fallback when the exact routes
//! exceed their budgets.

use crate::error::TypecheckError;
use xmltc_automata::enumerate::trees_up_to;
use xmltc_automata::Nta;
use xmltc_core::{eval, PebbleTransducer};
use xmltc_trees::BinaryTree;

/// Result of a bounded check.
#[derive(Clone, Debug)]
pub enum BoundedOutcome {
    /// No violation among inputs of depth ≤ the bound (NOT a proof).
    NoViolationFound {
        /// How many inputs were checked.
        inputs_checked: usize,
    },
    /// A concrete violation.
    CounterExample {
        /// The offending input.
        input: BinaryTree,
        /// An output of the transducer on `input` outside `τ₂`.
        bad_output: Option<BinaryTree>,
    },
}

/// Checks all `τ₁`-trees of depth ≤ `max_depth` (at most `max_inputs` of
/// them) exactly.
pub fn bounded_typecheck(
    t: &PebbleTransducer,
    input_type: &Nta,
    output_type: &Nta,
    max_depth: usize,
    max_inputs: usize,
) -> Result<BoundedOutcome, TypecheckError> {
    let complement = output_type.complement().to_nta();
    let inputs = trees_up_to(input_type, max_depth, max_inputs);
    let n = inputs.len();
    for input in inputs {
        let out_lang = eval::output_automaton(t, &input)?.to_nta();
        let bad = out_lang.intersect(&complement);
        if let Some(bad_output) = bad.witness() {
            return Ok(BoundedOutcome::CounterExample {
                input,
                bad_output: Some(bad_output),
            });
        }
    }
    Ok(BoundedOutcome::NoViolationFound { inputs_checked: n })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use xmltc_automata::State;
    use xmltc_core::library;
    use xmltc_trees::Alphabet;

    fn alpha() -> Arc<Alphabet> {
        Alphabet::ranked(&["x", "y"], &["f"])
    }

    fn top(al: &Arc<Alphabet>) -> Nta {
        let mut a = Nta::new(al, 1);
        for l in al.leaves() {
            a.add_leaf(l, State(0));
        }
        for b in al.binaries() {
            a.add_node(b, State(0), State(0), State(0));
        }
        a.add_final(State(0));
        a
    }

    fn all_x(al: &Arc<Alphabet>) -> Nta {
        let x = al.get("x").unwrap();
        let mut a = Nta::new(al, 1);
        a.add_leaf(x, State(0));
        for b in al.binaries() {
            a.add_node(b, State(0), State(0), State(0));
        }
        a.add_final(State(0));
        a
    }

    #[test]
    fn finds_counterexample() {
        let al = alpha();
        let t = library::copy(&al).unwrap();
        match bounded_typecheck(&t, &top(&al), &all_x(&al), 3, 500).unwrap() {
            BoundedOutcome::CounterExample { input, bad_output } => {
                assert_eq!(input, bad_output.unwrap());
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn reports_no_violation() {
        let al = alpha();
        let t = library::copy(&al).unwrap();
        let tau = all_x(&al);
        match bounded_typecheck(&t, &tau, &tau, 3, 500).unwrap() {
            BoundedOutcome::NoViolationFound { inputs_checked } => {
                assert!(inputs_checked > 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
