//! The end-to-end typechecking decision procedure (Theorem 4.4), with
//! counterexample extraction.

use crate::error::TypecheckError;
use crate::inverse::violation_nta;
use xmltc_automata::{lazy, LazyError, Nta};
use xmltc_core::{eval, PebbleTransducer};
use xmltc_obs as obs;
use xmltc_trees::{Alphabet, BinaryTree};

/// Which Theorem 4.7 construction to use.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Route {
    /// Pick automatically: behaviour composition when `k = 1`, MSO
    /// otherwise.
    Auto,
    /// Force the k = 1 behaviour-composition route (errors when `k > 1`).
    ForceWalk,
    /// Force the paper's MSO route (any `k`, non-elementary).
    ForceMso,
}

/// Resolved route (post-`Auto`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ResolvedRoute {
    /// Behaviour composition.
    Walk,
    /// MSO compilation.
    Mso,
}

/// How the final emptiness checks are executed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Engine {
    /// Pick automatically: lazy on the walk route (where the implicit
    /// product is largest relative to its reachable part), eager on the
    /// MSO route.
    Auto,
    /// Materialize the product automata before testing emptiness.
    Eager,
    /// On-the-fly search over the implicit product
    /// ([`xmltc_automata::lazy`]).
    Lazy,
}

/// Options for [`typecheck`].
#[derive(Clone, Copy, Debug)]
pub struct TypecheckOptions {
    /// Route selection.
    pub route: Route,
    /// Emptiness-engine selection.
    pub engine: Engine,
    /// Budget for intermediate automata (MSO subset constructions,
    /// behaviour classes, lazy product configurations). `u32::MAX` =
    /// unlimited.
    pub state_limit: u32,
    /// Worker threads for the walk route's composition frontier. `0`
    /// (the default) resolves via [`crate::walk::resolve_threads`]: the
    /// `XMLTC_THREADS` environment variable if set, else the machine's
    /// available parallelism. The verdict and every constructed automaton
    /// are identical for every thread count.
    pub threads: usize,
    /// Minimum walk-frontier batch size before worker threads are spawned;
    /// batches below it run sequentially even with `threads > 1`, so an
    /// auto-resolved thread count never loses to `--threads 1` on small
    /// instances. `0` (the default) resolves via
    /// [`crate::walk::resolve_parallel_threshold`]; `1` forces the
    /// parallel path. Like `threads`, this cannot change any verdict or
    /// automaton — only wall time.
    pub parallel_threshold: usize,
    /// Jobs per work-stealing chunk of the walk route's parallel frontier.
    /// `0` (the default) resolves via [`crate::walk::resolve_chunk`] (the
    /// `XMLTC_CHUNK` environment variable, else
    /// [`crate::walk::WORK_CHUNK`]). Like `threads`, this cannot change
    /// any verdict or automaton — only wall time.
    pub chunk: usize,
}

impl Default for TypecheckOptions {
    fn default() -> Self {
        TypecheckOptions {
            route: Route::Auto,
            engine: Engine::Auto,
            state_limit: 4_000_000,
            threads: 0,
            parallel_threshold: 0,
            chunk: 0,
        }
    }
}

impl TypecheckOptions {
    /// Resolves `Auto` against the machine's pebble count.
    pub fn route_for(&self, k: u8) -> ResolvedRoute {
        match self.route {
            Route::ForceWalk => ResolvedRoute::Walk,
            Route::ForceMso => ResolvedRoute::Mso,
            Route::Auto => {
                if k == 1 {
                    ResolvedRoute::Walk
                } else {
                    ResolvedRoute::Mso
                }
            }
        }
    }

    /// Resolves `Engine::Auto` against the route actually taken: lazy is
    /// the default for the walk route, opt-in for the MSO route.
    pub fn engine_for(&self, route: ResolvedRoute) -> Engine {
        match self.engine {
            Engine::Auto => match route {
                ResolvedRoute::Walk => Engine::Lazy,
                ResolvedRoute::Mso => Engine::Eager,
            },
            chosen => chosen,
        }
    }
}

/// Maps lazy-engine failures onto the typechecker's error vocabulary.
fn lift_lazy_error(e: LazyError) -> TypecheckError {
    match e {
        LazyError::AlphabetMismatch => {
            TypecheckError::Tree(xmltc_trees::TreeError::AlphabetMismatch)
        }
        LazyError::ConfigLimit { n } => TypecheckError::TooManyStates { n },
    }
}

/// The verdict of the typechecker.
#[derive(Clone, Debug)]
pub enum TypecheckOutcome {
    /// `T(τ₁) ⊆ τ₂`: every output of every valid input conforms.
    Ok,
    /// The transformation can violate the output type.
    CounterExample {
        /// A valid input tree (`∈ τ₁`) on which `T` can produce output
        /// outside `τ₂`.
        input: BinaryTree,
        /// A concrete offending output (`∈ T(input) ∖ τ₂`), when one could
        /// be extracted (always, unless enumeration limits are hit).
        bad_output: Option<BinaryTree>,
    },
}

impl TypecheckOutcome {
    /// True when the program typechecks.
    pub fn is_ok(&self) -> bool {
        matches!(self, TypecheckOutcome::Ok)
    }
}

/// **Theorem 4.4** — decides whether `T(τ₁) ⊆ τ₂`.
///
/// Steps: build the Proposition 4.6 violation automaton, convert it to a
/// regular tree language (Theorem 4.7), intersect with `τ₁` and test
/// emptiness. A nonempty intersection yields a counterexample input; the
/// Proposition 3.8 output automaton of that input, intersected with the
/// complement of `τ₂`, yields a concrete bad output.
pub fn typecheck(
    t: &PebbleTransducer,
    input_type: &Nta,
    output_type: &Nta,
    opts: &TypecheckOptions,
) -> Result<TypecheckOutcome, TypecheckError> {
    let _span = obs::span("typecheck");
    let route = opts.route_for(t.k());
    let engine = opts.engine_for(route);
    obs::record("transducer.k", t.k() as u64);
    obs::record("transducer.states", t.core().n_states() as u64);
    obs::record("route.is_mso", matches!(route, ResolvedRoute::Mso) as u64);
    obs::record("engine.lazy", matches!(engine, Engine::Lazy) as u64);
    if !Alphabet::same(t.input_alphabet(), input_type.alphabet()) {
        return Err(TypecheckError::Tree(
            xmltc_trees::TreeError::AlphabetMismatch,
        ));
    }
    let violations = violation_nta(t, output_type, opts)?;
    decide_with_violations(t, input_type, output_type, &violations, engine, opts)
}

/// **Theorem 4.4 with a precomputed violation automaton**: the final
/// emptiness check (and counterexample extraction) against an already
/// constructed regular language for `{t | T(t) ⊈ τ₂}`.
///
/// This is the warm path of the `xmltc serve` artifact cache: when the
/// Theorem 4.7 output (the expensive walk/MSO construction) is already
/// cached for `(T, τ₂)`, a typecheck against a different `τ₁` reduces to
/// this call — no `route.walk`/`route.mso` work at all. The `violations`
/// automaton must be the one [`crate::inverse::violation_nta`] would
/// produce for `(t, output_type)`; pairing a stale automaton with a
/// different transducer or output type yields garbage verdicts.
pub fn typecheck_with_violations(
    t: &PebbleTransducer,
    input_type: &Nta,
    output_type: &Nta,
    violations: &Nta,
    opts: &TypecheckOptions,
) -> Result<TypecheckOutcome, TypecheckError> {
    let _span = obs::span("typecheck");
    let route = opts.route_for(t.k());
    let engine = opts.engine_for(route);
    obs::record("transducer.k", t.k() as u64);
    obs::record("transducer.states", t.core().n_states() as u64);
    obs::record("route.is_mso", matches!(route, ResolvedRoute::Mso) as u64);
    obs::record("engine.lazy", matches!(engine, Engine::Lazy) as u64);
    obs::record("violation.cached", 1);
    obs::record("violation.states", violations.n_states() as u64);
    obs::record("violation.transitions", violations.n_transitions() as u64);
    if !Alphabet::same(t.input_alphabet(), input_type.alphabet()) {
        return Err(TypecheckError::Tree(
            xmltc_trees::TreeError::AlphabetMismatch,
        ));
    }
    decide_with_violations(t, input_type, output_type, violations, engine, opts)
}

/// Shared tail of [`typecheck`]/[`typecheck_with_violations`]: emptiness
/// of `τ₁ ∩ violations`, then Proposition 3.8 bad-output extraction.
fn decide_with_violations(
    t: &PebbleTransducer,
    input_type: &Nta,
    output_type: &Nta,
    violations: &Nta,
    engine: Engine,
    opts: &TypecheckOptions,
) -> Result<TypecheckOutcome, TypecheckError> {
    let witness = {
        let _span = obs::span("typecheck.emptiness");
        match engine {
            Engine::Lazy => {
                // On-the-fly: never materializes `τ₁ × violations`.
                lazy::intersection_witness(input_type, violations, opts.state_limit)
                    .map_err(lift_lazy_error)?
                    .0
                    .into_witness()
            }
            _ => {
                let offending_inputs = input_type.intersect(violations);
                obs::record("intersection.states", offending_inputs.n_states() as u64);
                obs::record(
                    "intersection.transitions",
                    offending_inputs.n_transitions() as u64,
                );
                offending_inputs.witness()
            }
        }
    };
    match witness {
        None => {
            obs::record("verdict.ok", 1);
            Ok(TypecheckOutcome::Ok)
        }
        Some(input) => {
            obs::record("verdict.ok", 0);
            let bad_output = extract_bad_output_with(t, &input, output_type, engine, opts)?;
            Ok(TypecheckOutcome::CounterExample { input, bad_output })
        }
    }
}

/// A member of `T(input) ∖ τ₂` via Proposition 3.8 (eager engine).
pub fn extract_bad_output(
    t: &PebbleTransducer,
    input: &BinaryTree,
    output_type: &Nta,
) -> Result<Option<BinaryTree>, TypecheckError> {
    extract_bad_output_with(
        t,
        input,
        output_type,
        Engine::Eager,
        &TypecheckOptions::default(),
    )
}

/// Engine-aware bad-output extraction: the lazy engine searches
/// `T(input) ∖ τ₂` directly, determinizing the complement of `τ₂` on
/// demand instead of materializing it.
pub fn extract_bad_output_with(
    t: &PebbleTransducer,
    input: &BinaryTree,
    output_type: &Nta,
    engine: Engine,
    opts: &TypecheckOptions,
) -> Result<Option<BinaryTree>, TypecheckError> {
    let _span = obs::span("typecheck.bad_output");
    let out_lang = eval::output_automaton(t, input)?.to_nta();
    if matches!(engine, Engine::Lazy) {
        let (outcome, _stats) = lazy::difference_witness(&out_lang, output_type, opts.state_limit)
            .map_err(lift_lazy_error)?;
        return Ok(outcome.into_witness());
    }
    let bad = out_lang.intersect(&output_type.complement().to_nta());
    Ok(bad.witness())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use xmltc_automata::State;
    use xmltc_core::library;
    use xmltc_trees::Symbol;

    fn alpha() -> Arc<Alphabet> {
        Alphabet::ranked(&["x", "y"], &["f"])
    }

    /// NTA for "all leaves labeled `leaf_sym`".
    fn all_leaves(al: &Arc<Alphabet>, leaf_sym: Symbol) -> Nta {
        let mut a = Nta::new(al, 1);
        a.add_leaf(leaf_sym, State(0));
        for b in al.binaries() {
            a.add_node(b, State(0), State(0), State(0));
        }
        a.add_final(State(0));
        a
    }

    /// NTA for all trees.
    fn top(al: &Arc<Alphabet>) -> Nta {
        let mut a = Nta::new(al, 1);
        for l in al.leaves() {
            a.add_leaf(l, State(0));
        }
        for b in al.binaries() {
            a.add_node(b, State(0), State(0), State(0));
        }
        a.add_final(State(0));
        a
    }

    #[test]
    fn copy_typechecks_against_itself() {
        // copy: T(τ) = τ, so T typechecks w.r.t. (τ, τ).
        let al = alpha();
        let t = library::copy(&al).unwrap();
        let x = al.get("x").unwrap();
        let tau = all_leaves(&al, x);
        let out = typecheck(&t, &tau, &tau, &TypecheckOptions::default()).unwrap();
        assert!(out.is_ok());
    }

    #[test]
    fn copy_fails_against_smaller_type_with_counterexample() {
        // inputs: all trees; outputs must have all-x leaves: fails, and the
        // counterexample must be a tree with a y, mapped to itself.
        let al = alpha();
        let t = library::copy(&al).unwrap();
        let x = al.get("x").unwrap();
        let tau1 = top(&al);
        let tau2 = all_leaves(&al, x);
        match typecheck(&t, &tau1, &tau2, &TypecheckOptions::default()).unwrap() {
            TypecheckOutcome::Ok => panic!("should not typecheck"),
            TypecheckOutcome::CounterExample { input, bad_output } => {
                assert!(tau1.accepts(&input).unwrap());
                assert!(
                    !tau2.accepts(&input).unwrap(),
                    "copy: bad input maps to itself"
                );
                let bad = bad_output.expect("bad output extracted");
                assert_eq!(bad, input, "copy's output is its input");
                assert!(!tau2.accepts(&bad).unwrap());
            }
        }
    }

    #[test]
    fn relabel_fixes_violation() {
        // Relabel y ↦ x: now all outputs have x leaves: typechecks.
        let al = alpha();
        let x = al.get("x").unwrap();
        let y = al.get("y").unwrap();
        let t = library::relabel(&al, &al, |s| if s == y { x } else { s }).unwrap();
        let tau1 = top(&al);
        let tau2 = all_leaves(&al, x);
        let out = typecheck(&t, &tau1, &tau2, &TypecheckOptions::default()).unwrap();
        assert!(out.is_ok());
    }

    #[test]
    fn mso_route_agrees_on_k1() {
        let al = alpha();
        let t = library::copy(&al).unwrap();
        let x = al.get("x").unwrap();
        let tau1 = top(&al);
        let tau2 = all_leaves(&al, x);
        let walk = typecheck(
            &t,
            &tau1,
            &tau2,
            &TypecheckOptions {
                route: Route::ForceWalk,
                ..Default::default()
            },
        )
        .unwrap();
        let mso = typecheck(
            &t,
            &tau1,
            &tau2,
            &TypecheckOptions {
                route: Route::ForceMso,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(walk.is_ok(), mso.is_ok());
        assert!(!walk.is_ok());
        // And on the passing instance:
        let tau_x = all_leaves(&al, x);
        for route in [Route::ForceWalk, Route::ForceMso] {
            let out = typecheck(
                &t,
                &tau_x,
                &tau_x,
                &TypecheckOptions {
                    route,
                    ..Default::default()
                },
            )
            .unwrap();
            assert!(out.is_ok(), "{route:?}");
        }
    }

    #[test]
    fn engines_agree_and_auto_resolves_by_route() {
        let al = alpha();
        let t = library::copy(&al).unwrap();
        let x = al.get("x").unwrap();
        let tau1 = top(&al);
        let tau2 = all_leaves(&al, x);
        for engine in [Engine::Auto, Engine::Eager, Engine::Lazy] {
            let opts = TypecheckOptions {
                engine,
                ..Default::default()
            };
            // Failing instance: both engines must refute, with a verified
            // counterexample.
            match typecheck(&t, &tau1, &tau2, &opts).unwrap() {
                TypecheckOutcome::Ok => panic!("{engine:?}: should not typecheck"),
                TypecheckOutcome::CounterExample { input, bad_output } => {
                    assert!(tau1.accepts(&input).unwrap(), "{engine:?}");
                    let bad = bad_output.expect("bad output extracted");
                    assert!(!tau2.accepts(&bad).unwrap(), "{engine:?}");
                }
            }
            // Passing instance.
            let ok = typecheck(&t, &tau2, &tau2, &opts).unwrap();
            assert!(ok.is_ok(), "{engine:?}");
        }
        let opts = TypecheckOptions::default();
        assert_eq!(opts.engine_for(ResolvedRoute::Walk), Engine::Lazy);
        assert_eq!(opts.engine_for(ResolvedRoute::Mso), Engine::Eager);
        let forced = TypecheckOptions {
            engine: Engine::Eager,
            ..Default::default()
        };
        assert_eq!(forced.engine_for(ResolvedRoute::Walk), Engine::Eager);
    }

    #[test]
    fn lazy_engine_respects_state_limit() {
        let al = alpha();
        let t = library::copy(&al).unwrap();
        let x = al.get("x").unwrap();
        let tau1 = top(&al);
        let tau2 = all_leaves(&al, x);
        let opts = TypecheckOptions {
            engine: Engine::Lazy,
            state_limit: 1,
            ..Default::default()
        };
        match typecheck(&t, &tau1, &tau2, &opts) {
            Err(TypecheckError::TooManyStates { .. }) => {}
            other => panic!("expected budget abort, got {other:?}"),
        }
    }

    #[test]
    fn duplicator_typechecks() {
        // duplicator over all-x inputs: outputs are trees over {z, f, x}
        // with all leaves x: typechecks against that type; fails against
        // "no z" type.
        let al = alpha();
        let (t, out_al) = library::duplicator(&al).unwrap();
        let x_in = al.get("x").unwrap();
        let tau1 = all_leaves(&al, x_in);
        let x_out = out_al.get("x").unwrap();
        let tau2 = all_leaves(&out_al, x_out);
        let out = typecheck(&t, &tau1, &tau2, &TypecheckOptions::default()).unwrap();
        assert!(out.is_ok());

        // Now forbid z at the root: "root must be f" — duplicator always
        // outputs z at the root, so every input is a counterexample.
        let f_out = out_al.get("f").unwrap();
        let mut no_z_root = Nta::new(&out_al, 2);
        // state 0: any subtree; state 1: root-accepting only via f.
        for l in out_al.leaves() {
            no_z_root.add_leaf(l, State(0));
        }
        for b in out_al.binaries() {
            no_z_root.add_node(b, State(0), State(0), State(0));
        }
        no_z_root.add_node(f_out, State(0), State(0), State(1));
        no_z_root.add_final(State(1));
        match typecheck(&t, &tau1, &no_z_root, &TypecheckOptions::default()).unwrap() {
            TypecheckOutcome::CounterExample { input, bad_output } => {
                assert!(tau1.accepts(&input).unwrap());
                let bad = bad_output.unwrap();
                assert!(!no_z_root.accepts(&bad).unwrap());
            }
            TypecheckOutcome::Ok => panic!("should fail"),
        }
    }
}
