//! **Theorem 4.7, efficient route for k = 1**: branching tree-walking
//! automata → deterministic bottom-up tree automata by subtree-behaviour
//! composition.
//!
//! At `k = 1` the place/pick transitions are unusable (the stack discipline
//! forbids them), so a 1-pebble automaton is exactly a *branching
//! tree-walking automaton*: a head walking up and down the tree with
//! or-nondeterminism and and-branching. This covers the paper's practical
//! cases (Section 5): top-down transducers, the XSLT fragment, selection
//! queries — after the Proposition 4.6 product these yield 1-pebble
//! violation automata.
//!
//! For a subtree `s` and entry state `q`, a *resolution* is a finite run of
//! the branch process started at `(q, root(s))` in which every branch
//! either accepts (branch0) inside `s` or exits upward from `root(s)` to
//! its parent in some state. The **behaviour** of `s` maps each entry state
//! to the ⊆-minimal antichain of achievable *exit-state sets* (as bitset
//! masks); resolving to the empty set means outright acceptance inside `s`.
//! Whether up-moves may exit depends on which child position `s` occupies,
//! so a subtree carries a behaviour for each position (left/right), plus an
//! "accepts as a whole tree" bit. This triple is a finite congruence:
//! composing a node from its children's triples is a small least fixpoint
//! over the node's local rules. The resulting deterministic bottom-up
//! automaton, built lazily over reachable triples, recognizes exactly
//! `inst(A)`.
//!
//! # Performance architecture
//!
//! The construction is organized for sharing and parallelism while staying
//! bit-identical to the reference nested-loop build:
//!
//! * **Interning** — exit-set [`Mask`]s and entry-state-indexed behaviours
//!   live in arena tables and are referred to by dense `u32` ids, so triple
//!   identity and the composition memo hash a few words instead of whole
//!   behaviour tables; walker rules are pre-compiled per symbol into dense
//!   action tables ([`SymTable`]) with static reverse-dependency edges,
//!   lifting all hash lookups out of the fixpoint inner loop.
//! * **Worklist fixpoints** — the local least fixpoint at a node re-examines
//!   a state only when a state it reads (via `Stay`, `Branch2`, or an exit
//!   bit of a child behaviour) actually grew, instead of rescanning every
//!   state until stabilization. Fixpoint runs start from shared prefixes:
//!   the children-independent part of each symbol's system (`Accept`,
//!   `Stay`, `Fork` rules) is solved **once per symbol** into a base
//!   solution, each composition re-propagates only the `Down`-rule
//!   increments from it, and the root solution in turn seeds the
//!   left/right positional runs with just the up-move increments. All
//!   three restarts are sound because chaotic iteration from any point
//!   below the least fixpoint converges to it. Every buffer the solver
//!   touches lives in a per-worker [`Workspace`], so a composition
//!   allocates almost nothing.
//! * **Triple memoization** — the composition at a node depends only on
//!   `(symbol, left child's left-behaviour id, right child's right-behaviour
//!   id)`, so distinct state pairs that project to the same key share one
//!   fixpoint run ([`WalkStats::memo_hits`] counts the collapses).
//! * **Parallel frontier** — each generation of not-yet-memoized
//!   compositions is evaluated by a std-only scoped-thread work crew
//!   against frozen read-only arenas; the results are then interned
//!   sequentially in canonical (job-list) order and the reference discovery
//!   loop is replayed verbatim, so state numbering — and therefore every
//!   downstream artifact — is identical at any thread count.

use crate::error::TypecheckError;
use std::sync::atomic::{AtomicUsize, Ordering};
use xmltc_automata::state::StateSet;
use xmltc_automata::{Dbta, State};
use xmltc_core::machine::{Action, Move, PebbleAutomaton};
use xmltc_obs::journal;
use xmltc_trees::{FxHashMap, FxHashSet, Symbol};

/// Words kept inline in a [`Mask`]; machines with up to
/// `64 · INLINE_WORDS` states (the practical norm after `trim_states`)
/// never heap-allocate a mask.
const INLINE_WORDS: usize = 4;

/// A fixed-width (per walker) bitset of machine states — an exit set.
///
/// The representation is picked once per walker from its state count, so
/// within one construction the variants never mix: mask operations in the
/// fixpoint inner loop are pure register work on the inline variant, and
/// only machines wider than 256 states fall back to heap storage.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
enum Mask {
    Inline([u64; INLINE_WORDS]),
    Heap(Vec<u64>),
}

impl Mask {
    fn empty(words: usize) -> Mask {
        if words <= INLINE_WORDS {
            Mask::Inline([0; INLINE_WORDS])
        } else {
            Mask::Heap(vec![0; words])
        }
    }

    fn singleton(q: usize, words: usize) -> Mask {
        let mut m = Mask::empty(words);
        match &mut m {
            Mask::Inline(w) => w[q / 64] |= 1u64 << (q % 64),
            Mask::Heap(w) => w[q / 64] |= 1u64 << (q % 64),
        }
        m
    }

    fn words(&self) -> &[u64] {
        match self {
            Mask::Inline(w) => w,
            Mask::Heap(w) => w,
        }
    }

    fn is_empty(&self) -> bool {
        self.words().iter().all(|&w| w == 0)
    }

    fn or(&self, other: &Mask) -> Mask {
        match (self, other) {
            (Mask::Inline(a), Mask::Inline(b)) => {
                let mut out = *a;
                for (o, x) in out.iter_mut().zip(b) {
                    *o |= x;
                }
                Mask::Inline(out)
            }
            _ => Mask::Heap(
                self.words()
                    .iter()
                    .zip(other.words())
                    .map(|(a, b)| a | b)
                    .collect(),
            ),
        }
    }

    fn is_subset(&self, other: &Mask) -> bool {
        self.words()
            .iter()
            .zip(other.words())
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over set bit positions.
    fn bits(&self) -> impl Iterator<Item = usize> + '_ {
        self.words().iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

/// A ⊆-minimal antichain of exit-set masks, kept sorted for canonical
/// hashing.
type Antichain = Vec<Mask>;

/// Inserts `m`, keeping the antichain minimal. Returns true when the
/// represented upward-closed set grew.
fn insert_min(ac: &mut Antichain, m: Mask) -> bool {
    if ac.iter().any(|x| x.is_subset(&m)) {
        return false; // a subset of m is already present
    }
    ac.retain(|x| !m.is_subset(x)); // drop supersets of m
    ac.push(m);
    true
}

/// Entry-state-indexed behaviour in raw (un-interned) form, as computed by
/// a fixpoint run.
type Behavior = Vec<Antichain>;

/// Arena id of an interned [`Mask`].
type MaskId = u32;
/// Arena id of an interned behaviour.
type BehaviorId = u32;

/// Interned behaviour in flat id form: entry state `q`'s antichain is
/// `ids[offsets[q] as usize..offsets[q + 1] as usize]`, content-sorted.
struct BehaviorData {
    offsets: Vec<u32>,
    ids: Vec<MaskId>,
}

impl BehaviorData {
    fn at(&self, q: usize) -> &[MaskId] {
        &self.ids[self.offsets[q] as usize..self.offsets[q + 1] as usize]
    }
}

/// Content-addressed mask store; equal masks share one id.
#[derive(Default)]
struct MaskArena {
    index: FxHashMap<Mask, MaskId>,
    masks: Vec<Mask>,
}

impl MaskArena {
    fn intern(&mut self, m: Mask) -> MaskId {
        if let Some(&id) = self.index.get(&m) {
            return id;
        }
        let id = self.masks.len() as MaskId;
        self.index.insert(m.clone(), id);
        self.masks.push(m);
        id
    }
}

/// Content-addressed behaviour store; equal behaviours share one id, so
/// triple identity and memo keys compare `u32`s.
///
/// The index is keyed on the *flat mask form* a composition produces: a
/// lookup is one hash over two contiguous vectors, and only a genuine
/// miss — once per distinct behaviour, not once per composition — pays
/// for interning the member masks into their id form.
#[derive(Default)]
struct BehaviorArena {
    index: FxHashMap<FlatBehavior, BehaviorId>,
    behaviors: Vec<BehaviorData>,
}

impl BehaviorArena {
    fn intern(&mut self, b: FlatBehavior, masks: &mut MaskArena) -> BehaviorId {
        if let Some(&id) = self.index.get(&b) {
            return id;
        }
        let ids = b.masks.iter().map(|m| masks.intern(m.clone())).collect();
        let data = BehaviorData {
            offsets: b.offsets.clone(),
            ids,
        };
        let id = self.behaviors.len() as BehaviorId;
        self.behaviors.push(data);
        self.index.insert(b, id);
        id
    }
}

/// An interned subtree triple: left/right behaviour ids plus the
/// whole-tree acceptance bit.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct TripleIds {
    left: BehaviorId,
    right: BehaviorId,
    accepting: bool,
}

/// One pre-compiled local action (everything but up-moves, which are
/// position-dependent and kept separately).
#[derive(Clone, Copy)]
enum Act {
    /// `branch0` — accept with no exits.
    Accept,
    /// `branch2(q₁, q₂)` — and-branch into both states at this node.
    Fork(u32, u32),
    /// `stay(p)` — re-dispatch at this node in state `p`.
    Stay(u32),
    /// `down(target)` into the left (`left = true`) or right child.
    Down { left: bool, target: u32 },
}

/// Per-symbol compiled rule table: dense action lists plus the static
/// reverse-dependency edges (`Stay`/`Fork` reads) a worklist needs.
struct SymTable {
    /// Actions of each state at a node with this symbol.
    acts: Vec<Vec<Act>>,
    /// `(state, exit target)` pairs of `UpLeft` rules.
    up_left: Vec<(u32, u32)>,
    /// `(state, exit target)` pairs of `UpRight` rules.
    up_right: Vec<(u32, u32)>,
    /// `rdeps[p]` = states whose candidates read `r[p]` via `Stay`/`Fork`.
    rdeps: Vec<Vec<u32>>,
    /// States with at least one action, ascending — the initial worklist
    /// of the base fixpoint.
    active: Vec<u32>,
    /// States with at least one `Down` action, ascending — the only states
    /// whose candidates depend on the children, hence the initial worklist
    /// of a composition's root run (restarted from [`SymTable::base`]).
    down_states: Vec<u32>,
    /// Whether any state has a `Down` action (gates down-dependency work).
    has_down: bool,
    /// Least fixpoint of the children-independent rules (everything but
    /// `Down`), solved once per symbol. Every composition's root run
    /// starts here; for leaves it *is* the root solution.
    base: Behavior,
}

impl SymTable {
    fn new(n_states: usize) -> SymTable {
        SymTable {
            acts: vec![Vec::new(); n_states],
            up_left: Vec::new(),
            up_right: Vec::new(),
            rdeps: vec![Vec::new(); n_states],
            active: Vec::new(),
            down_states: Vec::new(),
            has_down: false,
            base: Vec::new(),
        }
    }
}

/// Everything a single composition's fixpoint runs share: the compiled
/// symbol table, the (frozen) children behaviours and mask arena, and the
/// per-composition dynamic down-dependency edges.
struct FixCtx<'a> {
    table: &'a SymTable,
    children: Option<(&'a BehaviorData, &'a BehaviorData)>,
    masks: &'a [Mask],
    /// `down_rdeps[p]` = states with a `Down` action whose child antichain
    /// contains an exit set with bit `p`; empty when `!table.has_down` or
    /// there are no children.
    down_rdeps: &'a [Vec<u32>],
}

/// Worklist counters of one composition (summed/maxed into [`WalkStats`]).
#[derive(Clone, Copy, Default)]
struct JobStats {
    steps: u64,
    peak: usize,
    par_batches: u64,
}

/// Reusable buffers of the solver inner loop (candidate masks and the
/// exit-resolution double buffer).
#[derive(Default)]
struct Scratch {
    cands: Vec<Mask>,
    acc: Antichain,
    tmp: Antichain,
}

/// Per-worker reusable solver state: the two behaviour buffers, the
/// worklist with its membership flags, the candidate scratch, and the
/// down-dependency edge buffer. Compositions run entirely inside one
/// workspace, so after warm-up they allocate only their (flat) results.
struct Workspace {
    /// Root-position solution buffer (restarted from the symbol base).
    root: Behavior,
    /// Positional (left/right) solution buffer (restarted from `root`).
    pos: Behavior,
    /// The worklist; empty between runs.
    wl: Vec<u32>,
    /// `inq[q]` ⟺ `q` is on `wl`; all-false between runs.
    inq: Vec<bool>,
    scratch: Scratch,
    /// Buffer for [`FixCtx::down_rdeps`], refilled per composition.
    down_rdeps: Vec<Vec<u32>>,
}

impl Workspace {
    fn new(n_states: usize) -> Workspace {
        Workspace {
            root: vec![Antichain::new(); n_states],
            pos: vec![Antichain::new(); n_states],
            wl: Vec::new(),
            inq: vec![false; n_states],
            scratch: Scratch::default(),
            down_rdeps: vec![Vec::new(); n_states],
        }
    }
}

/// A behaviour in flat, canonical (sorted) form: entry state `q`'s
/// antichain is `masks[offsets[q] as usize..offsets[q + 1] as usize]`.
/// Two allocations per behaviour, however many states the machine has —
/// and the interning key of [`BehaviorArena`].
#[derive(PartialEq, Eq, Hash)]
struct FlatBehavior {
    offsets: Vec<u32>,
    masks: Vec<Mask>,
}

/// Flattens a solved behaviour buffer, sorting each antichain into the
/// canonical order interning expects.
fn flatten(r: &[Antichain]) -> FlatBehavior {
    let mut offsets = Vec::with_capacity(r.len() + 1);
    offsets.push(0);
    let mut masks: Vec<Mask> = Vec::new();
    for ac in r {
        let start = masks.len();
        masks.extend(ac.iter().cloned());
        masks[start..].sort_unstable();
        offsets.push(masks.len() as u32);
    }
    FlatBehavior { offsets, masks }
}

/// The raw (un-interned) result of one composition. `left`/`right` are
/// `None` when that child position admits no up-moves, in which case the
/// positional behaviour equals the root one (no copy, no re-interning).
struct RawTriple {
    root: FlatBehavior,
    left: Option<FlatBehavior>,
    right: Option<FlatBehavior>,
    accepting: bool,
}

/// Rebuilds the reverse edges induced by `Down` actions into `deps`:
/// state `q` must be re-examined when an exit state of the child antichain
/// it consumes grows. Shared by all three runs of one composition.
fn fill_down_rdeps(
    table: &SymTable,
    (bl, br): (&BehaviorData, &BehaviorData),
    masks: &[Mask],
    deps: &mut [Vec<u32>],
) {
    for v in deps.iter_mut() {
        v.clear();
    }
    for &q in &table.down_states {
        for act in &table.acts[q as usize] {
            if let Act::Down { left, target } = *act {
                let child = if left { bl } else { br };
                for &mid in child.at(target as usize) {
                    for e in masks[mid as usize].bits() {
                        deps[e].push(q);
                    }
                }
            }
        }
    }
    for v in deps.iter_mut() {
        v.sort_unstable();
        v.dedup();
    }
}

struct Walker {
    tables: FxHashMap<Symbol, SymTable>,
    n_states: usize,
    words: usize,
    initial: usize,
}

impl Walker {
    /// Compiles the automaton's rules into per-symbol tables and solves
    /// each symbol's children-independent base fixpoint (counted into
    /// `stats`, like every other solver run).
    fn new(a: &PebbleAutomaton, stats: &mut JobStats) -> Result<Walker, TypecheckError> {
        if a.k() != 1 {
            return Err(TypecheckError::NeedsOnePebble { k: a.k() });
        }
        let n_states = a.core().n_states() as usize;
        let mut tables: FxHashMap<Symbol, SymTable> = FxHashMap::default();
        for (sym, q, guard, action) in a.core().rules() {
            debug_assert!(guard.0.is_empty(), "k = 1 guards are trivial");
            let t = tables.entry(sym).or_insert_with(|| SymTable::new(n_states));
            let qi = q.0;
            match action {
                Action::Branch0 => t.acts[q.index()].push(Act::Accept),
                Action::Branch2(q1, q2) => {
                    t.acts[q.index()].push(Act::Fork(q1.0, q2.0));
                    t.rdeps[q1.index()].push(qi);
                    t.rdeps[q2.index()].push(qi);
                }
                Action::Move(m, target) => match m {
                    Move::Stay => {
                        t.acts[q.index()].push(Act::Stay(target.0));
                        t.rdeps[target.index()].push(qi);
                    }
                    Move::UpLeft => t.up_left.push((qi, target.0)),
                    Move::UpRight => t.up_right.push((qi, target.0)),
                    Move::DownLeft | Move::DownRight => {
                        t.acts[q.index()].push(Act::Down {
                            left: matches!(m, Move::DownLeft),
                            target: target.0,
                        });
                        t.has_down = true;
                    }
                    Move::PlaceNew | Move::PickCurrent => {
                        unreachable!("unusable at k = 1")
                    }
                },
                Action::Output0(..) | Action::Output2(..) => {
                    unreachable!("automata have no output transitions")
                }
            }
        }
        for t in tables.values_mut() {
            for v in &mut t.rdeps {
                v.sort_unstable();
                v.dedup();
            }
            t.up_left.sort_unstable();
            t.up_left.dedup();
            t.up_right.sort_unstable();
            t.up_right.dedup();
            t.active = t
                .acts
                .iter()
                .enumerate()
                .filter(|(_, acts)| !acts.is_empty())
                .map(|(i, _)| i as u32)
                .collect();
            t.down_states = t
                .acts
                .iter()
                .enumerate()
                .filter(|(_, acts)| acts.iter().any(|a| matches!(a, Act::Down { .. })))
                .map(|(i, _)| i as u32)
                .collect();
        }
        let mut walker = Walker {
            tables,
            n_states,
            words: n_states.div_ceil(64).max(1),
            initial: a.core().initial().index(),
        };
        // Base fixpoints: solve each symbol's system with `Down` candidates
        // absent (no children). Every composition restarts from here.
        let mut ws = Workspace::new(n_states);
        let syms: Vec<Symbol> = walker.tables.keys().copied().collect();
        let mut bases: Vec<(Symbol, Behavior)> = Vec::with_capacity(syms.len());
        for &sym in &syms {
            let table = &walker.tables[&sym];
            let ctx = FixCtx {
                table,
                children: None,
                masks: &[],
                down_rdeps: &[],
            };
            let mut base = vec![Antichain::new(); n_states];
            for &q in &table.active {
                ws.inq[q as usize] = true;
                ws.wl.push(q);
            }
            walker.solve(
                &ctx,
                &mut base,
                &mut ws.wl,
                &mut ws.inq,
                &mut ws.scratch,
                stats,
            );
            bases.push((sym, base));
        }
        for (sym, base) in bases {
            walker.tables.get_mut(&sym).expect("known symbol").base = base;
        }
        Ok(walker)
    }

    /// Pushes all resolution candidates of state `q` against the current
    /// `r` into `scratch.cands`. Candidates need not be mutually minimal —
    /// the `insert_min` merge in [`Walker::solve`] filters them.
    fn candidates(&self, ctx: &FixCtx<'_>, r: &[Antichain], q: usize, scratch: &mut Scratch) {
        for act in &ctx.table.acts[q] {
            match *act {
                Act::Accept => scratch.cands.push(Mask::empty(self.words)),
                Act::Fork(q1, q2) => {
                    for x in &r[q1 as usize] {
                        for y in &r[q2 as usize] {
                            scratch.cands.push(x.or(y));
                        }
                    }
                }
                Act::Stay(p) => scratch.cands.extend(r[p as usize].iter().cloned()),
                Act::Down { left, target } => {
                    let Some((bl, br)) = ctx.children else {
                        continue;
                    };
                    let child = if left { bl } else { br };
                    for &mid in child.at(target as usize) {
                        self.resolve_exits(&ctx.masks[mid as usize], r, scratch);
                    }
                }
            }
        }
    }

    /// Exit states returned by a child must all resolve at the current
    /// node: pushes the minimal unions over one choice of resolution per
    /// exit state into `scratch.cands` (nothing when some exit state
    /// cannot resolve yet).
    fn resolve_exits(&self, exits: &Mask, r: &[Antichain], scratch: &mut Scratch) {
        scratch.acc.clear();
        scratch.acc.push(Mask::empty(self.words));
        for q in exits.bits() {
            if r[q].is_empty() {
                return; // this exit state cannot resolve (yet)
            }
            scratch.tmp.clear();
            for x in &scratch.acc {
                for y in &r[q] {
                    insert_min(&mut scratch.tmp, x.or(y));
                }
            }
            std::mem::swap(&mut scratch.acc, &mut scratch.tmp);
        }
        scratch.cands.append(&mut scratch.acc);
    }

    /// Chaotic-iteration worklist loop: pops a state, recomputes its
    /// candidates, and re-enqueues its readers when its antichain grew.
    /// On entry `wl` must list every state whose candidates may exceed `r`
    /// and `inq` must flag exactly the listed states; on exit `wl` is
    /// empty and `inq` all-false again, ready for the next run.
    fn solve(
        &self,
        ctx: &FixCtx<'_>,
        r: &mut [Antichain],
        wl: &mut Vec<u32>,
        inq: &mut [bool],
        scratch: &mut Scratch,
        stats: &mut JobStats,
    ) {
        stats.peak = stats.peak.max(wl.len());
        while let Some(q) = wl.pop() {
            inq[q as usize] = false;
            stats.steps += 1;
            self.candidates(ctx, r, q as usize, scratch);
            let mut grew = false;
            for m in scratch.cands.drain(..) {
                grew |= insert_min(&mut r[q as usize], m);
            }
            if !grew {
                continue;
            }
            for &d in &ctx.table.rdeps[q as usize] {
                if !inq[d as usize] {
                    inq[d as usize] = true;
                    wl.push(d);
                }
            }
            if let Some(deps) = ctx.down_rdeps.get(q as usize) {
                for &d in deps {
                    if !inq[d as usize] {
                        inq[d as usize] = true;
                        wl.push(d);
                    }
                }
            }
            stats.peak = stats.peak.max(wl.len());
        }
    }

    /// Extends the root least fixpoint with a child position's up-move
    /// exits, solving into the reusable `pos` buffer. Sound because the
    /// root solution is below the positional least fixpoint and chaotic
    /// iteration from any such point converges to it — only the up
    /// increments need re-propagation. Returns `None` when there are no
    /// up-moves for this position (behaviour = root's).
    #[allow(clippy::too_many_arguments)]
    fn extend_up(
        &self,
        ctx: &FixCtx<'_>,
        root: &[Antichain],
        pos: &mut Behavior,
        ups: &[(u32, u32)],
        wl: &mut Vec<u32>,
        inq: &mut [bool],
        scratch: &mut Scratch,
        stats: &mut JobStats,
    ) -> Option<FlatBehavior> {
        if ups.is_empty() {
            return None;
        }
        for (p, r) in pos.iter_mut().zip(root) {
            p.clone_from(r);
        }
        for &(q, target) in ups {
            if !insert_min(
                &mut pos[q as usize],
                Mask::singleton(target as usize, self.words),
            ) {
                continue;
            }
            for &d in &ctx.table.rdeps[q as usize] {
                if !inq[d as usize] {
                    inq[d as usize] = true;
                    wl.push(d);
                }
            }
            if let Some(deps) = ctx.down_rdeps.get(q as usize) {
                for &d in deps {
                    if !inq[d as usize] {
                        inq[d as usize] = true;
                        wl.push(d);
                    }
                }
            }
        }
        self.solve(ctx, pos, wl, inq, scratch, stats);
        Some(flatten(pos))
    }

    /// One full composition: the root fixpoint (restarted from the symbol
    /// base) plus its left/right up-move extensions. Pure apart from the
    /// workspace buffers — reads only frozen arenas, so it is safe to run
    /// from worker threads with per-worker workspaces.
    fn compose(
        &self,
        sym: Symbol,
        children: Option<(&BehaviorData, &BehaviorData)>,
        masks: &[Mask],
        ws: &mut Workspace,
        stats: &mut JobStats,
    ) -> RawTriple {
        let Some(table) = self.tables.get(&sym) else {
            return RawTriple {
                root: flatten(&vec![Antichain::new(); self.n_states]),
                left: None,
                right: None,
                accepting: false,
            };
        };
        let Workspace {
            root,
            pos,
            wl,
            inq,
            scratch,
            down_rdeps,
        } = ws;
        let use_down = table.has_down && children.is_some();
        if use_down {
            fill_down_rdeps(
                table,
                children.expect("gated on children"),
                masks,
                down_rdeps,
            );
        }
        let ctx = FixCtx {
            table,
            children,
            masks,
            down_rdeps: if use_down { down_rdeps } else { &[] },
        };
        // Root run: only the `Down` candidates can exceed the base.
        for (p, b) in root.iter_mut().zip(&table.base) {
            p.clone_from(b);
        }
        if use_down && !table.down_states.is_empty() {
            for &q in &table.down_states {
                inq[q as usize] = true;
                wl.push(q);
            }
            self.solve(&ctx, root, wl, inq, scratch, stats);
        }
        // Accepting iff the initial configuration resolves with no exits.
        let accepting = root[self.initial].iter().any(Mask::is_empty);
        let left = self.extend_up(&ctx, root, pos, &table.up_left, wl, inq, scratch, stats);
        let right = self.extend_up(&ctx, root, pos, &table.up_right, wl, inq, scratch, stats);
        RawTriple {
            root: flatten(root),
            left,
            right,
            accepting,
        }
    }
}

/// A composition job: symbol plus the children's projection ids (`None`
/// for a leaf).
type Job = (Symbol, Option<(BehaviorId, BehaviorId)>);

/// Evaluates a batch of composition jobs, in parallel when the batch, the
/// thread budget *and* the parallel threshold allow it. Results come back
/// in job order, so the (sequential) interning that follows is independent
/// of scheduling.
///
/// The threshold gate exists because a composition job is cheap (≈10 µs on
/// the flagship instances): below a measured batch size the fixed cost of
/// spawning a worker crew plus the loss of the sequential run's warm
/// workspace outweighs the speedup, and `--threads auto` would *lose* to
/// `--threads 1` (BENCH_typecheck.json schema 4 recorded 147.7 ms parallel
/// vs 116.5 ms sequential on Q2/mod-3, whose batches peak at 2 448 jobs).
fn compute_batch(
    walker: &Walker,
    jobs: &[Job],
    masks: &[Mask],
    behaviors: &[BehaviorData],
    threads: usize,
    parallel_threshold: usize,
    agg: &mut JobStats,
) -> Vec<RawTriple> {
    let jour = journal::enabled();
    let run_one = |job: &Job, ws: &mut Workspace, stats: &mut JobStats| -> RawTriple {
        if jour {
            journal::begin("walk.job");
        }
        let children = job
            .1
            .map(|(l, r)| (&behaviors[l as usize], &behaviors[r as usize]));
        let raw = walker.compose(job.0, children, masks, ws, stats);
        if jour {
            journal::end("walk.job");
        }
        raw
    };
    if threads <= 1 || jobs.len() < parallel_threshold.max(2) {
        let mut ws = Workspace::new(walker.n_states);
        return jobs.iter().map(|j| run_one(j, &mut ws, agg)).collect();
    }
    agg.par_batches += 1;
    let workers = threads.min(jobs.len());
    let next = AtomicUsize::new(0);
    let mut out: Vec<Option<RawTriple>> = Vec::with_capacity(jobs.len());
    out.resize_with(jobs.len(), || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let next = &next;
                let run_one = &run_one;
                // Workers carry stable names so successive frontier crews
                // merge into one per-worker timeline track in trace output.
                std::thread::Builder::new()
                    .name(format!("walk-worker-{w}"))
                    .spawn_scoped(scope, move || {
                        if jour {
                            journal::begin("walk.worker");
                        }
                        let mut local: Vec<(usize, RawTriple)> = Vec::new();
                        let mut ws = Workspace::new(walker.n_states);
                        let mut stats = JobStats::default();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= jobs.len() {
                                break;
                            }
                            if jour {
                                journal::counter(
                                    "walk.jobs_remaining",
                                    (jobs.len() - i - 1) as u64,
                                );
                            }
                            local.push((i, run_one(&jobs[i], &mut ws, &mut stats)));
                        }
                        if jour {
                            journal::end("walk.worker");
                        }
                        (local, stats)
                    })
                    .expect("spawn walk worker")
            })
            .collect();
        for h in handles {
            let (local, stats) = h.join().expect("walk worker panicked");
            agg.steps += stats.steps;
            agg.peak = agg.peak.max(stats.peak);
            for (i, raw) in local {
                out[i] = Some(raw);
            }
        }
    });
    out.into_iter()
        .map(|o| o.expect("every job computed"))
        .collect()
}

/// Interns a raw composition result: the root behaviour, then the
/// positional ones (which alias the root when the position admits no
/// up-moves). Main-thread only, in canonical job order — arena ids are
/// therefore thread-count independent.
fn intern_raw(raw: RawTriple, masks: &mut MaskArena, behaviors: &mut BehaviorArena) -> TripleIds {
    let root_id = behaviors.intern(raw.root, masks);
    let mut position = |b: Option<FlatBehavior>, masks: &mut MaskArena| match b {
        Some(b) => behaviors.intern(b, masks),
        None => root_id,
    };
    TripleIds {
        left: position(raw.left, masks),
        right: position(raw.right, masks),
        accepting: raw.accepting,
    }
}

/// Assigns (or retrieves) the DBTA state of an interned triple, honoring
/// the class budget exactly as the reference build did.
fn intern_triple(
    ids: TripleIds,
    triples: &mut Vec<TripleIds>,
    index: &mut FxHashMap<TripleIds, State>,
    limit: u32,
) -> Result<State, TypecheckError> {
    if let Some(&q) = index.get(&ids) {
        return Ok(q);
    }
    let q = State(triples.len() as u32);
    if q.0 >= limit {
        return Err(TypecheckError::TooManyStates { n: q.0 + 1 });
    }
    index.insert(ids, q);
    triples.push(ids);
    Ok(q)
}

/// Options for [`walking_to_dbta_with`].
#[derive(Clone, Copy, Debug)]
pub struct WalkOptions {
    /// Budget on behaviour classes (congruence states); `u32::MAX` =
    /// unlimited.
    pub limit: u32,
    /// Worker threads for the composition frontier; `0` resolves via
    /// [`resolve_threads`].
    pub threads: usize,
    /// Minimum frontier-batch size (composition jobs) before a worker crew
    /// is spawned; smaller batches run sequentially even when `threads >
    /// 1`, so an auto-resolved thread count never loses to `--threads 1`
    /// on small instances. `0` resolves via [`resolve_parallel_threshold`]
    /// (the `XMLTC_PAR_THRESHOLD` environment variable, else
    /// [`PARALLEL_JOB_THRESHOLD`]); `1` forces the parallel path for every
    /// batch of at least two jobs.
    pub parallel_threshold: usize,
}

impl Default for WalkOptions {
    fn default() -> Self {
        WalkOptions {
            limit: u32::MAX,
            threads: 0,
            parallel_threshold: 0,
        }
    }
}

/// Counters describing one [`walking_to_dbta_with`] run. All fields are
/// deterministic — independent of the thread count used.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalkStats {
    /// Transition-table pairs `(symbol, s₁, s₂)` resolved.
    pub pairs: u64,
    /// Distinct fixpoint compositions actually computed (leaves included).
    pub compositions: u64,
    /// Pairs resolved from the memo without a fixpoint run
    /// (`pairs − binary compositions`).
    pub memo_hits: u64,
    /// Binary compositions that *did* require a fixpoint run (distinct
    /// memo keys); `memo_hits + memo_misses = pairs`.
    pub memo_misses: u64,
    /// Total worklist pops across all fixpoint runs.
    pub fixpoint_steps: u64,
    /// Peak worklist length of any single fixpoint run.
    pub worklist_peak: u64,
    /// Frontier generations (compute → intern → replay cycles).
    pub rounds: u64,
    /// Worker threads the frontier was evaluated with.
    pub threads: u64,
    /// Frontier batches that actually spawned a worker crew (batches below
    /// the parallel threshold run sequentially regardless of `threads`).
    pub parallel_batches: u64,
    /// The resolved parallel threshold the run was gated on.
    pub parallel_threshold: u64,
    /// Distinct exit-set masks interned.
    pub masks_interned: u64,
    /// Distinct behaviours interned.
    pub behaviors_interned: u64,
    /// States of the resulting DBTA.
    pub dbta_states: u64,
}

impl WalkStats {
    /// Fraction of pairs resolved from the memo, in `[0, 1]`. Defined as
    /// `0.0` when no pairs were resolved at all (a trivial automaton), so
    /// the value is always finite — never the `NaN` a bare
    /// `hits / (hits + misses)` would produce in JSON/bench output.
    pub fn memo_hit_rate(&self) -> f64 {
        let total = self.memo_hits + self.memo_misses;
        if total == 0 {
            0.0
        } else {
            self.memo_hits as f64 / total as f64
        }
    }
}

/// Resolves a requested frontier thread count: an explicit `n > 0` wins,
/// else the `XMLTC_THREADS` environment variable, else the machine's
/// available parallelism (1 when unknown).
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Some(n) = std::env::var("XMLTC_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        if n > 0 {
            return n;
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Default minimum frontier-batch size for the parallel path, measured on
/// the flagship Q2/mod-3 instance (see DESIGN.md "Walk-route performance"):
/// its batches peak at 2 448 jobs and 4-thread evaluation is still ~27%
/// *slower* than sequential there, while crews pay for themselves once a
/// batch carries several thousand ≈10 µs jobs. Below this bound the
/// spawn-and-join overhead plus the cold per-worker workspaces dominate.
pub const PARALLEL_JOB_THRESHOLD: usize = 4096;

/// Resolves a requested parallel threshold: an explicit `n > 0` wins, else
/// the `XMLTC_PAR_THRESHOLD` environment variable, else
/// [`PARALLEL_JOB_THRESHOLD`].
pub fn resolve_parallel_threshold(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Some(n) = std::env::var("XMLTC_PAR_THRESHOLD")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        if n > 0 {
            return n;
        }
    }
    PARALLEL_JOB_THRESHOLD
}

/// Converts a 1-pebble (branching tree-walking) automaton into an
/// equivalent deterministic bottom-up tree automaton, returning the
/// construction counters alongside.
///
/// Errors when `k ≠ 1` or the behaviour-class budget is exceeded. The
/// output is bit-identical for every thread count: workers only evaluate
/// pure compositions, and all interning happens sequentially in a
/// canonical order.
pub fn walking_to_dbta_with(
    a: &PebbleAutomaton,
    opts: &WalkOptions,
) -> Result<(Dbta, WalkStats), TypecheckError> {
    let mut job_stats = JobStats::default();
    let walker = Walker::new(a, &mut job_stats)?;
    let threads = resolve_threads(opts.threads);
    let parallel_threshold = resolve_parallel_threshold(opts.parallel_threshold);
    let limit = opts.limit;
    let alphabet = a.input_alphabet();

    let mut masks = MaskArena::default();
    let mut behaviors = BehaviorArena::default();
    let mut triples: Vec<TripleIds> = Vec::new();
    let mut index: FxHashMap<TripleIds, State> = FxHashMap::default();
    let mut memo: FxHashMap<(Symbol, BehaviorId, BehaviorId), TripleIds> = FxHashMap::default();
    let mut leaf: FxHashMap<Symbol, State> = FxHashMap::default();
    let mut node: FxHashMap<(Symbol, State, State), State> = FxHashMap::default();
    let mut rounds = 0u64;

    // Leaf triples, in alphabet order (canonical).
    let leaf_syms = alphabet.leaves();
    let leaf_jobs: Vec<Job> = leaf_syms.iter().map(|&s| (s, None)).collect();
    let raws = compute_batch(
        &walker,
        &leaf_jobs,
        &masks.masks,
        &behaviors.behaviors,
        threads,
        parallel_threshold,
        &mut job_stats,
    );
    for (&sym, raw) in leaf_syms.iter().zip(raws) {
        let ids = intern_raw(raw, &mut masks, &mut behaviors);
        let q = intern_triple(ids, &mut triples, &mut index, limit)?;
        leaf.insert(sym, q);
    }

    let binaries = alphabet.binaries();
    loop {
        rounds += 1;
        // Frontier: every composition key over the known triples that is
        // neither resolved as a transition nor memoized yet — in canonical
        // (s₁-major, s₂-minor, symbol) order.
        let mut jobs: Vec<Job> = Vec::new();
        let mut seen: FxHashSet<(Symbol, BehaviorId, BehaviorId)> = FxHashSet::default();
        for x in 0..triples.len() {
            for y in 0..triples.len() {
                for &sym in &binaries {
                    if node.contains_key(&(sym, State(x as u32), State(y as u32))) {
                        continue;
                    }
                    let key = (sym, triples[x].left, triples[y].right);
                    if !memo.contains_key(&key) && seen.insert(key) {
                        jobs.push((sym, Some((key.1, key.2))));
                    }
                }
            }
        }
        if journal::enabled() {
            journal::instant("walk.round");
            journal::counter("walk.frontier_jobs", jobs.len() as u64);
        }
        if !jobs.is_empty() {
            let raws = compute_batch(
                &walker,
                &jobs,
                &masks.masks,
                &behaviors.behaviors,
                threads,
                parallel_threshold,
                &mut job_stats,
            );
            for (&(sym, children), raw) in jobs.iter().zip(raws) {
                let (l, r) = children.expect("binary job");
                let ids = intern_raw(raw, &mut masks, &mut behaviors);
                memo.insert((sym, l, r), ids);
            }
        }

        // Canonical replay of the reference nested-loop discovery: interns
        // triples and transitions in exactly the order the sequential
        // build did, aborting (for another frontier round) at the first
        // composition not yet memoized — necessarily one involving a
        // triple first discovered during this very replay.
        let mut complete = true;
        let mut processed = 0usize;
        'replay: while processed < triples.len() {
            let s1 = State(processed as u32);
            processed += 1;
            let mut p2 = 0usize;
            while p2 < triples.len() {
                let s2 = State(p2 as u32);
                p2 += 1;
                for &sym in &binaries {
                    for (x, y) in [(s1, s2), (s2, s1)] {
                        if node.contains_key(&(sym, x, y)) {
                            continue;
                        }
                        let key = (sym, triples[x.index()].left, triples[y.index()].right);
                        let Some(&ids) = memo.get(&key) else {
                            complete = false;
                            break 'replay;
                        };
                        let q = intern_triple(ids, &mut triples, &mut index, limit)?;
                        node.insert((sym, x, y), q);
                    }
                }
            }
        }
        if journal::enabled() {
            journal::counter("walk.triples", triples.len() as u64);
            journal::counter("walk.masks_arena", masks.masks.len() as u64);
            journal::counter("walk.behaviors_arena", behaviors.behaviors.len() as u64);
            journal::counter("walk.memo_misses", memo.len() as u64);
            journal::counter(
                "walk.memo_hits",
                node.len().saturating_sub(memo.len()) as u64,
            );
        }
        if complete {
            break;
        }
    }

    let finals: StateSet = triples
        .iter()
        .enumerate()
        .filter(|(_, t)| t.accepting)
        .map(|(i, _)| State(i as u32))
        .collect();
    let stats = WalkStats {
        pairs: node.len() as u64,
        compositions: (leaf.len() + memo.len()) as u64,
        memo_hits: (node.len() - memo.len()) as u64,
        memo_misses: memo.len() as u64,
        fixpoint_steps: job_stats.steps,
        worklist_peak: job_stats.peak as u64,
        rounds,
        threads: threads as u64,
        parallel_batches: job_stats.par_batches,
        parallel_threshold: parallel_threshold as u64,
        masks_interned: masks.masks.len() as u64,
        behaviors_interned: behaviors.behaviors.len() as u64,
        dbta_states: triples.len() as u64,
    };
    let d = Dbta::from_parts(alphabet, triples.len() as u32, leaf, node, finals);
    Ok((d, stats))
}

/// Converts a 1-pebble (branching tree-walking) automaton into an
/// equivalent deterministic bottom-up tree automaton.
///
/// Errors when `k ≠ 1`. The `limit` bounds the number of behaviour classes
/// (congruence states) explored.
pub fn walking_to_dbta_limited(a: &PebbleAutomaton, limit: u32) -> Result<Dbta, TypecheckError> {
    walking_to_dbta_with(
        a,
        &WalkOptions {
            limit,
            ..Default::default()
        },
    )
    .map(|(d, _)| d)
}

/// [`walking_to_dbta_limited`] without a class budget.
pub fn walking_to_dbta(a: &PebbleAutomaton) -> Result<Dbta, TypecheckError> {
    walking_to_dbta_limited(a, u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use xmltc_core::accepts;
    use xmltc_core::machine::{AutomatonBuilder, Guard, SymSpec};
    use xmltc_trees::{Alphabet, BinaryTree};

    fn alpha() -> Arc<Alphabet> {
        Alphabet::ranked(&["x", "y"], &["f"])
    }

    const TREES: [&str; 10] = [
        "x",
        "y",
        "f(x, y)",
        "f(y, x)",
        "f(x, x)",
        "f(x, f(x, x))",
        "f(f(y, x), x)",
        "f(f(x, x), f(x, y))",
        "f(f(x, y), f(y, x))",
        "f(f(f(x, x), x), y)",
    ];

    fn agree(a: &PebbleAutomaton) {
        let al = a.input_alphabet().clone();
        let d = walking_to_dbta(a).unwrap();
        for src in TREES {
            let t = BinaryTree::parse(src, &al).unwrap();
            assert_eq!(
                d.accepts(&t).unwrap(),
                accepts(a, &t).unwrap(),
                "disagreement on {src}"
            );
        }
        // The construction must be invariant under the thread count: same
        // states, transitions, finals, and counters.
        let opts1 = WalkOptions {
            threads: 1,
            ..Default::default()
        };
        // threshold 1 forces the worker-crew path even on these tiny
        // batches, so the parallel machinery stays under test.
        let opts4 = WalkOptions {
            threads: 4,
            parallel_threshold: 1,
            ..Default::default()
        };
        let (d1, s1) = walking_to_dbta_with(a, &opts1).unwrap();
        let (d4, s4) = walking_to_dbta_with(a, &opts4).unwrap();
        assert_eq!(d1, d4, "thread count changed the DBTA");
        assert_eq!(d1, d, "explicit thread count changed the DBTA");
        assert_eq!(
            (s1.pairs, s1.compositions, s1.memo_hits, s1.dbta_states),
            (s4.pairs, s4.compositions, s4.memo_hits, s4.dbta_states),
            "thread count changed the counters"
        );
        assert_eq!(s1.memo_misses, s4.memo_misses);
        assert_eq!(s1.pairs, s1.compositions - /* leaves */ 2 + s1.memo_hits);
        assert_eq!(s1.pairs, s1.memo_hits + s1.memo_misses);
    }

    #[test]
    fn memo_hit_rate_is_always_finite() {
        // The 0/0 case — no pairs resolved — must not be NaN.
        let empty = WalkStats::default();
        assert_eq!(empty.memo_hit_rate(), 0.0);
        assert!(empty.memo_hit_rate().is_finite());
        let s = WalkStats {
            memo_hits: 3,
            memo_misses: 1,
            ..WalkStats::default()
        };
        assert_eq!(s.memo_hit_rate(), 0.75);
        let all_miss = WalkStats {
            memo_misses: 5,
            ..WalkStats::default()
        };
        assert_eq!(all_miss.memo_hit_rate(), 0.0);
    }

    /// Walks down-left-only to check the leftmost leaf is x.
    #[test]
    fn leftmost_leaf_x() {
        let al = alpha();
        let x = al.get("x").unwrap();
        let mut b = AutomatonBuilder::new(&al, 1);
        let q = b.state("walk", 1).unwrap();
        b.set_initial(q);
        b.move_rule(SymSpec::Binaries, q, Guard::any(), Move::DownLeft, q)
            .unwrap();
        b.branch0(SymSpec::One(x), q, Guard::any()).unwrap();
        agree(&b.build().unwrap());
    }

    /// Or-search: some y leaf exists.
    #[test]
    fn some_y() {
        let al = alpha();
        let y = al.get("y").unwrap();
        let mut b = AutomatonBuilder::new(&al, 1);
        let q = b.state("search", 1).unwrap();
        b.set_initial(q);
        b.branch0(SymSpec::One(y), q, Guard::any()).unwrap();
        b.move_rule(SymSpec::Binaries, q, Guard::any(), Move::DownLeft, q)
            .unwrap();
        b.move_rule(SymSpec::Binaries, q, Guard::any(), Move::DownRight, q)
            .unwrap();
        agree(&b.build().unwrap());
    }

    /// And-branching: all leaves x.
    #[test]
    fn all_x() {
        let al = alpha();
        let x = al.get("x").unwrap();
        let mut b = AutomatonBuilder::new(&al, 1);
        let q = b.state("check", 1).unwrap();
        let l = b.state("left", 1).unwrap();
        let r = b.state("right", 1).unwrap();
        b.set_initial(q);
        b.branch0(SymSpec::One(x), q, Guard::any()).unwrap();
        b.branch2(SymSpec::Binaries, q, Guard::any(), l, r).unwrap();
        b.move_rule(SymSpec::Binaries, l, Guard::any(), Move::DownLeft, q)
            .unwrap();
        b.move_rule(SymSpec::Binaries, r, Guard::any(), Move::DownRight, q)
            .unwrap();
        agree(&b.build().unwrap());
    }

    /// A genuinely two-way machine: walk to the leftmost leaf; if it is y,
    /// walk all the way back up and then check the rightmost leaf is also
    /// y. Exercises up-moves and exit composition.
    #[test]
    fn two_way_walk() {
        let al = alpha();
        let y = al.get("y").unwrap();
        let mut b = AutomatonBuilder::new(&al, 1);
        let down = b.state("down", 1).unwrap();
        let up = b.state("up", 1).unwrap();
        let right = b.state("right", 1).unwrap();
        b.set_initial(down);
        b.move_rule(SymSpec::Binaries, down, Guard::any(), Move::DownLeft, down)
            .unwrap();
        // On a y leftmost leaf: climb.
        b.move_rule(SymSpec::One(y), down, Guard::any(), Move::UpLeft, up)
            .unwrap();
        b.move_rule(SymSpec::One(y), down, Guard::any(), Move::UpRight, up)
            .unwrap();
        b.move_rule(SymSpec::Any, up, Guard::any(), Move::UpLeft, up)
            .unwrap();
        b.move_rule(SymSpec::Any, up, Guard::any(), Move::UpRight, up)
            .unwrap();
        // From wherever climbing stops... we can't test rootness, so `up`
        // also nondeterministically switches to descending right.
        b.move_rule(SymSpec::Binaries, up, Guard::any(), Move::Stay, right)
            .unwrap();
        b.move_rule(
            SymSpec::Binaries,
            right,
            Guard::any(),
            Move::DownRight,
            right,
        )
        .unwrap();
        b.branch0(SymSpec::One(y), right, Guard::any()).unwrap();
        // Degenerate single-leaf tree: y alone accepts via the right state?
        // No — initial `down` on a leaf y has no applicable rule except the
        // up-moves, which fail at the root: single y is rejected. That is
        // the machine's semantics; the theorem only asks for agreement.
        agree(&b.build().unwrap());
    }

    /// Stay-cycles must not diverge or accept spuriously.
    #[test]
    fn stay_cycle() {
        let al = alpha();
        let mut b = AutomatonBuilder::new(&al, 1);
        let q = b.state("a", 1).unwrap();
        let p = b.state("b", 1).unwrap();
        b.set_initial(q);
        b.move_rule(SymSpec::Any, q, Guard::any(), Move::Stay, p)
            .unwrap();
        b.move_rule(SymSpec::Any, p, Guard::any(), Move::Stay, q)
            .unwrap();
        agree(&b.build().unwrap());
    }

    /// k = 2 machines are rejected by this route.
    #[test]
    fn requires_one_pebble() {
        let al = alpha();
        let mut b = AutomatonBuilder::new(&al, 2);
        let q = b.state("q", 1).unwrap();
        let q2 = b.state("q2", 2).unwrap();
        b.set_initial(q);
        b.move_rule(SymSpec::Any, q, Guard::any(), Move::PlaceNew, q2)
            .unwrap();
        b.branch0(SymSpec::Any, q2, Guard::any()).unwrap();
        let a = b.build().unwrap();
        assert!(matches!(
            walking_to_dbta(&a),
            Err(TypecheckError::NeedsOnePebble { k: 2 })
        ));
    }

    /// The class budget aborts at the same canonical point regardless of
    /// thread count.
    #[test]
    fn limit_abort_is_thread_invariant() {
        let al = alpha();
        let y = al.get("y").unwrap();
        let mut b = AutomatonBuilder::new(&al, 1);
        let q = b.state("search", 1).unwrap();
        b.set_initial(q);
        b.branch0(SymSpec::One(y), q, Guard::any()).unwrap();
        b.move_rule(SymSpec::Binaries, q, Guard::any(), Move::DownLeft, q)
            .unwrap();
        b.move_rule(SymSpec::Binaries, q, Guard::any(), Move::DownRight, q)
            .unwrap();
        let a = b.build().unwrap();
        let full = walking_to_dbta(&a).unwrap();
        assert!(full.n_states() >= 2);
        for limit in 0..full.n_states() {
            let mut aborts = Vec::new();
            for threads in [1usize, 4] {
                let opts = WalkOptions {
                    limit,
                    threads,
                    parallel_threshold: 1,
                };
                match walking_to_dbta_with(&a, &opts) {
                    Err(TypecheckError::TooManyStates { n }) => aborts.push(n),
                    other => panic!("limit {limit}: expected budget abort, got {other:?}"),
                }
            }
            assert_eq!(aborts[0], aborts[1], "limit {limit}");
            assert_eq!(aborts[0], limit + 1, "abort reports the breached budget");
        }
    }
}
