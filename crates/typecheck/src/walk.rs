//! **Theorem 4.7, efficient route for k = 1**: branching tree-walking
//! automata → deterministic bottom-up tree automata by subtree-behaviour
//! composition.
//!
//! At `k = 1` the place/pick transitions are unusable (the stack discipline
//! forbids them), so a 1-pebble automaton is exactly a *branching
//! tree-walking automaton*: a head walking up and down the tree with
//! or-nondeterminism and and-branching. This covers the paper's practical
//! cases (Section 5): top-down transducers, the XSLT fragment, selection
//! queries — after the Proposition 4.6 product these yield 1-pebble
//! violation automata.
//!
//! For a subtree `s` and entry state `q`, a *resolution* is a finite run of
//! the branch process started at `(q, root(s))` in which every branch
//! either accepts (branch0) inside `s` or exits upward from `root(s)` to
//! its parent in some state. The **behaviour** of `s` maps each entry state
//! to the ⊆-minimal antichain of achievable *exit-state sets* (as bitset
//! rows); resolving to the empty set means outright acceptance inside `s`.
//! Whether up-moves may exit depends on which child position `s` occupies,
//! so a subtree carries a behaviour for each position (left/right), plus an
//! "accepts as a whole tree" bit. This triple is a finite congruence:
//! composing a node from its children's triples is a small least fixpoint
//! over the node's local rules. The resulting deterministic bottom-up
//! automaton, built lazily over reachable triples, recognizes exactly
//! `inst(A)`.
//!
//! # Performance architecture
//!
//! The construction is organized around a dense bitset kernel, projected
//! memo keys, and a work-stealing frontier, while staying bit-identical to
//! the reference nested-loop build:
//!
//! * **Dense kernel** — exit sets are flat `u64` rows of a fixed width
//!   (`words` per machine) living in one contiguous per-composition arena
//!   ([`Workspace::arena`]); rows are immutable once written and referred
//!   to by dense ids, so `or`/`subset` are word-parallel loops over
//!   contiguous slices and a behaviour copy is a `memcpy`. Antichains are
//!   kept sorted by popcount ([`RowRef`]), so minimal-insertion
//!   ([`ac_insert_min`]) subset-checks only against rows that can possibly
//!   be subsets and drops only rows that can possibly be supersets.
//! * **Compiled tables** — walker rules are pre-compiled per symbol into
//!   CSR action and reverse-dependency arrays ([`SymTable`]), lifting all
//!   hash lookups out of the fixpoint inner loop. The children-independent
//!   part of each symbol's system is solved **once per symbol** into a
//!   popcount-sorted [`DenseBase`]; each composition seeds its arena from
//!   it with one slice copy and re-propagates only the `Down`-rule
//!   increments, and the root solution in turn seeds the left/right
//!   positional runs with just the up-move increments (sound because
//!   chaotic iteration from any point below the least fixpoint converges
//!   to it).
//! * **Projected memoization** — a composition reads a child behaviour
//!   only at the symbol's `Down`-rule targets, so the memo key is the
//!   *projection* of each child behaviour onto those targets
//!   ([`Projection`], interned main-thread-only). Distinct behaviour pairs
//!   that agree on the targets — or any pair under a symbol with no `Down`
//!   rules on a side — collapse to one fixpoint run;
//!   [`WalkStats::memo_hits`] counts the collapses. Frontier jobs are
//!   deduped per round on the same key.
//! * **Work-stealing frontier** — each generation of unmemoized
//!   compositions is split into contiguous chunks ([`resolve_chunk`])
//!   dealt round-robin onto per-worker deques; idle workers steal the back
//!   half of a victim's deque, so stragglers cannot serialize the round.
//!   Workers only evaluate pure compositions against frozen arenas; the
//!   results are then interned sequentially in canonical (job-list) order
//!   and the reference discovery loop is replayed verbatim, so state
//!   numbering — and therefore every downstream artifact — is identical at
//!   any thread count and any chunk size.
//! * **Incremental discovery** — the frontier scan keeps a `scanned`
//!   cursor over the triple arena: a round enumerates only pairs
//!   involving triples interned since the previous round (older pairs
//!   already resolved their memo key the round the younger member
//!   appeared), and the replay keeps persistent per-row column cursors
//!   instead of restarting from zero. Each ordered pair is therefore
//!   visited O(1) times across the whole run — `O(m²·B)` total instead of
//!   `O(rounds·m²·B)` — which is what keeps the sequential bookkeeping a
//!   fraction of the parallelizable job work on saturated frontiers. Both
//!   cursors are pure functions of the interned-triple sequence, so the
//!   canonical order (and the DBTA) stays thread-invariant.

use crate::error::TypecheckError;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use xmltc_automata::state::StateSet;
use xmltc_automata::{Dbta, State};
use xmltc_core::machine::{Action, Move, PebbleAutomaton};
use xmltc_obs::journal;
use xmltc_trees::{FxHashMap, FxHashSet, Symbol};

/// Arena id of a bitset row (in row units: the row occupies words
/// `id * words .. (id + 1) * words` of its arena).
type RowId = u32;
/// Arena id of an interned behaviour.
type BehaviorId = u32;
/// Arena id of an interned behaviour projection.
type ProjId = u32;

/// An antichain member: arena row id plus the row's cached popcount.
/// Antichains are kept sorted by popcount ascending, which bounds both
/// phases of [`ac_insert_min`].
#[derive(Clone, Copy, Debug)]
struct RowRef {
    id: RowId,
    pc: u32,
}

#[inline]
fn row_at(arena: &[u64], id: RowId, words: usize) -> &[u64] {
    let s = id as usize * words;
    &arena[s..s + words]
}

#[inline]
fn row_popcount(row: &[u64]) -> u32 {
    row.iter().map(|w| w.count_ones()).sum()
}

/// `a ⊆ b` over equal-width rows.
#[inline]
fn row_subset(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x & !y == 0)
}

/// Iterates over set bit positions of a row.
fn row_bits(row: &[u64]) -> impl Iterator<Item = usize> + '_ {
    row.iter().enumerate().flat_map(|(wi, &w)| {
        let mut w = w;
        std::iter::from_fn(move || {
            if w == 0 {
                None
            } else {
                let b = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + b)
            }
        })
    })
}

/// Inserts `cand` into a popcount-sorted ⊆-minimal antichain, appending
/// the row to `arena` when it is genuinely new. Returns true when the
/// represented upward-closed set grew.
///
/// Phase 1 scans entries with `pc ≤ |cand|` — the only possible subsets of
/// `cand` (an equal-popcount subset is equality) — and bails if one is
/// found. Phase 2 compacts away entries with `pc > |cand|` that are
/// supersets of `cand`, preserving order, then inserts `cand` at the
/// popcount-sorted position. Rows are append-only; dropped entries leave
/// their arena rows dead until the composition's arena resets.
fn ac_insert_min(ac: &mut Vec<RowRef>, arena: &mut Vec<u64>, words: usize, cand: &[u64]) -> bool {
    let pc = row_popcount(cand);
    let mut i = 0;
    while i < ac.len() && ac[i].pc <= pc {
        if row_subset(row_at(arena, ac[i].id, words), cand) {
            return false;
        }
        i += 1;
    }
    let mut k = i;
    for j in i..ac.len() {
        if !row_subset(cand, row_at(arena, ac[j].id, words)) {
            ac[k] = ac[j];
            k += 1;
        }
    }
    ac.truncate(k);
    let id = (arena.len() / words) as RowId;
    arena.extend_from_slice(cand);
    ac.insert(i, RowRef { id, pc });
    true
}

/// A behaviour in flat, canonical form: entry state `q`'s antichain is the
/// rows `offsets[q]..offsets[q + 1]` (row units), each antichain sorted
/// lexicographically by row words. Serves as both the interning key and
/// the stored representation — two allocations per behaviour.
#[derive(Clone, PartialEq, Eq, Hash)]
struct FlatBehavior {
    offsets: Vec<u32>,
    rows: Vec<u64>,
}

impl FlatBehavior {
    fn ac(&self, q: usize, words: usize) -> &[u64] {
        &self.rows[self.offsets[q] as usize * words..self.offsets[q + 1] as usize * words]
    }
}

/// Flattens solved antichain lists into canonical (lexicographically
/// row-sorted) flat form.
fn flatten(lists: &[Vec<RowRef>], arena: &[u64], words: usize) -> FlatBehavior {
    let mut offsets = Vec::with_capacity(lists.len() + 1);
    offsets.push(0u32);
    let mut rows: Vec<u64> = Vec::new();
    let mut order: Vec<RowId> = Vec::new();
    for list in lists {
        order.clear();
        order.extend(list.iter().map(|e| e.id));
        order.sort_unstable_by(|&a, &b| row_at(arena, a, words).cmp(row_at(arena, b, words)));
        for &id in &order {
            rows.extend_from_slice(row_at(arena, id, words));
        }
        offsets.push((rows.len() / words) as u32);
    }
    FlatBehavior { offsets, rows }
}

/// Content-addressed behaviour store; equal behaviours share one id, so
/// triple identity and memo keys compare `u32`s. `rows_seen` tracks the
/// distinct exit-set rows occurring in interned behaviours (the kernel
/// analogue of the old mask arena, reported as
/// [`WalkStats::masks_interned`]).
#[derive(Default)]
struct BehaviorArena {
    index: FxHashMap<FlatBehavior, BehaviorId>,
    behaviors: Vec<FlatBehavior>,
    rows_seen: FxHashSet<Vec<u64>>,
}

impl BehaviorArena {
    fn intern(&mut self, b: FlatBehavior, words: usize) -> BehaviorId {
        if let Some(&id) = self.index.get(&b) {
            return id;
        }
        for row in b.rows.chunks_exact(words) {
            if !self.rows_seen.contains(row) {
                self.rows_seen.insert(row.to_vec());
            }
        }
        let id = self.behaviors.len() as BehaviorId;
        self.index.insert(b.clone(), id);
        self.behaviors.push(b);
        id
    }
}

/// A behaviour restricted to one symbol side's `Down`-rule targets: slot
/// `s` (the index into [`SymTable::targets`]) maps to the antichain rows
/// `offsets[s]..offsets[s + 1]` (row units). Compositions read children
/// *only* through projections, which is what makes the projected memo key
/// sound.
#[derive(Clone, PartialEq, Eq, Hash)]
struct Projection {
    offsets: Vec<u32>,
    rows: Vec<u64>,
}

impl Projection {
    fn ac(&self, slot: usize, words: usize) -> &[u64] {
        &self.rows[self.offsets[slot] as usize * words..self.offsets[slot + 1] as usize * words]
    }
}

/// Content-addressed projection store (main-thread only).
#[derive(Default)]
struct ProjArena {
    index: FxHashMap<Projection, ProjId>,
    projs: Vec<Projection>,
}

impl ProjArena {
    fn intern(&mut self, p: Projection) -> ProjId {
        if let Some(&id) = self.index.get(&p) {
            return id;
        }
        let id = self.projs.len() as ProjId;
        self.index.insert(p.clone(), id);
        self.projs.push(p);
        id
    }
}

/// Computes and caches behaviour → projection ids per `(table, side)`.
/// Lives on the main thread; projection ids are assigned in canonical
/// frontier-scan order, hence deterministic.
struct Projector {
    arena: ProjArena,
    /// `cache[table][side][behavior]` = interned projection id, or
    /// `u32::MAX` when not yet computed.
    cache: Vec<[Vec<u32>; 2]>,
}

impl Projector {
    fn new(n_tables: usize) -> Projector {
        Projector {
            arena: ProjArena::default(),
            cache: (0..n_tables).map(|_| [Vec::new(), Vec::new()]).collect(),
        }
    }

    fn id(
        &mut self,
        walker: &Walker,
        behaviors: &BehaviorArena,
        ti: u32,
        side: usize,
        b: BehaviorId,
    ) -> ProjId {
        let cache = &mut self.cache[ti as usize][side];
        if b as usize >= cache.len() {
            cache.resize(b as usize + 1, u32::MAX);
        }
        if cache[b as usize] != u32::MAX {
            return cache[b as usize];
        }
        let words = walker.words;
        let targets = walker.tables[ti as usize].targets(side);
        let fb = &behaviors.behaviors[b as usize];
        let mut p = Projection {
            offsets: Vec::with_capacity(targets.len() + 1),
            rows: Vec::new(),
        };
        p.offsets.push(0);
        for &t in targets {
            p.rows.extend_from_slice(fb.ac(t as usize, words));
            p.offsets.push((p.rows.len() / words) as u32);
        }
        let id = self.arena.intern(p);
        self.cache[ti as usize][side][b as usize] = id;
        id
    }
}

/// An interned subtree triple: left/right behaviour ids plus the
/// whole-tree acceptance bit.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct TripleIds {
    left: BehaviorId,
    right: BehaviorId,
    accepting: bool,
}

/// One pre-compiled local action (everything but up-moves, which are
/// position-dependent and kept separately).
#[derive(Clone, Copy)]
enum Act {
    /// `branch0` — accept with no exits.
    Accept,
    /// `branch2(q₁, q₂)` — and-branch into both states at this node.
    Fork(u32, u32),
    /// `stay(p)` — re-dispatch at this node in state `p`.
    Stay(u32),
    /// `down` into the left (`left = true`) or right child; `slot` indexes
    /// the side's target list (and therefore the child projection).
    Down { left: bool, slot: u32 },
}

/// The children-independent least fixpoint of one symbol, stored densely:
/// state `q`'s antichain is rows `offsets[q]..offsets[q + 1]` (row units),
/// popcount-sorted, with `pcs` caching per-row popcounts. Seeding a
/// composition is one `extend_from_slice` plus a [`RowRef`] list rebuild.
#[derive(Default)]
struct DenseBase {
    offsets: Vec<u32>,
    rows: Vec<u64>,
    pcs: Vec<u32>,
}

/// Per-symbol compiled rule table in CSR form: dense action lists plus the
/// static reverse-dependency edges (`Stay`/`Fork` reads) a worklist needs.
struct SymTable {
    acts_off: Vec<u32>,
    acts: Vec<Act>,
    /// `(state, exit target)` pairs of `UpLeft` rules.
    up_left: Vec<(u32, u32)>,
    /// `(state, exit target)` pairs of `UpRight` rules.
    up_right: Vec<(u32, u32)>,
    rdeps_off: Vec<u32>,
    rdeps: Vec<u32>,
    /// States with at least one action, ascending — the initial worklist
    /// of the base fixpoint.
    active: Vec<u32>,
    /// States with at least one `Down` action, ascending — the only states
    /// whose candidates depend on the children, hence the initial worklist
    /// of a composition's root run (restarted from [`SymTable::base`]).
    down_states: Vec<u32>,
    /// Whether any state has a `Down` action (gates down-dependency work).
    has_down: bool,
    /// Sorted distinct `DownLeft` targets; `Act::Down` slots index this.
    dl_targets: Vec<u32>,
    /// Sorted distinct `DownRight` targets.
    dr_targets: Vec<u32>,
    base: DenseBase,
}

impl SymTable {
    fn acts(&self, q: usize) -> &[Act] {
        &self.acts[self.acts_off[q] as usize..self.acts_off[q + 1] as usize]
    }

    fn rdeps(&self, q: usize) -> &[u32] {
        &self.rdeps[self.rdeps_off[q] as usize..self.rdeps_off[q + 1] as usize]
    }

    fn targets(&self, side: usize) -> &[u32] {
        if side == 0 {
            &self.dl_targets
        } else {
            &self.dr_targets
        }
    }
}

/// Raw (pre-CSR) action as collected from the rule stream.
#[derive(Clone, Copy)]
enum RawAct {
    Accept,
    Fork(u32, u32),
    Stay(u32),
    Down { left: bool, target: u32 },
}

/// Mutable per-symbol accumulator, frozen into a [`SymTable`].
struct TableBuilder {
    acts: Vec<Vec<RawAct>>,
    up_left: Vec<(u32, u32)>,
    up_right: Vec<(u32, u32)>,
    rdeps: Vec<Vec<u32>>,
}

impl TableBuilder {
    fn new(n_states: usize) -> TableBuilder {
        TableBuilder {
            acts: vec![Vec::new(); n_states],
            up_left: Vec::new(),
            up_right: Vec::new(),
            rdeps: vec![Vec::new(); n_states],
        }
    }

    fn freeze(mut self) -> SymTable {
        let n_states = self.acts.len();
        let mut dl_targets: Vec<u32> = Vec::new();
        let mut dr_targets: Vec<u32> = Vec::new();
        for acts in &self.acts {
            for a in acts {
                if let RawAct::Down { left, target } = *a {
                    if left {
                        dl_targets.push(target);
                    } else {
                        dr_targets.push(target);
                    }
                }
            }
        }
        dl_targets.sort_unstable();
        dl_targets.dedup();
        dr_targets.sort_unstable();
        dr_targets.dedup();
        let mut acts_off = Vec::with_capacity(n_states + 1);
        acts_off.push(0u32);
        let mut acts: Vec<Act> = Vec::new();
        let mut active = Vec::new();
        let mut down_states = Vec::new();
        for (q, list) in self.acts.iter().enumerate() {
            if !list.is_empty() {
                active.push(q as u32);
            }
            let mut q_down = false;
            for a in list {
                acts.push(match *a {
                    RawAct::Accept => Act::Accept,
                    RawAct::Fork(a1, a2) => Act::Fork(a1, a2),
                    RawAct::Stay(p) => Act::Stay(p),
                    RawAct::Down { left, target } => {
                        q_down = true;
                        let side = if left { &dl_targets } else { &dr_targets };
                        let slot = side.binary_search(&target).expect("registered target") as u32;
                        Act::Down { left, slot }
                    }
                });
            }
            if q_down {
                down_states.push(q as u32);
            }
            acts_off.push(acts.len() as u32);
        }
        let mut rdeps_off = Vec::with_capacity(n_states + 1);
        rdeps_off.push(0u32);
        let mut rdeps: Vec<u32> = Vec::new();
        for v in &mut self.rdeps {
            v.sort_unstable();
            v.dedup();
            rdeps.extend_from_slice(v);
            rdeps_off.push(rdeps.len() as u32);
        }
        self.up_left.sort_unstable();
        self.up_left.dedup();
        self.up_right.sort_unstable();
        self.up_right.dedup();
        SymTable {
            acts_off,
            acts,
            up_left: self.up_left,
            up_right: self.up_right,
            rdeps_off,
            rdeps,
            active,
            has_down: !down_states.is_empty(),
            down_states,
            dl_targets,
            dr_targets,
            base: DenseBase::default(),
        }
    }
}

/// Everything a single composition's fixpoint runs share: the compiled
/// symbol table, the (frozen) children projections, and the
/// per-composition dynamic down-dependency edges.
struct FixCtx<'a> {
    table: &'a SymTable,
    children: Option<(&'a Projection, &'a Projection)>,
    /// `down_rdeps[p]` = states with a `Down` action whose child antichain
    /// contains an exit set with bit `p`; empty when `!table.has_down` or
    /// there are no children.
    down_rdeps: &'a [Vec<u32>],
}

/// Worklist counters of one composition (summed/maxed into [`WalkStats`]).
#[derive(Clone, Copy, Default)]
struct JobStats {
    steps: u64,
    peak: u64,
    par_batches: u64,
    rows: u64,
    row_peak: u64,
    chunks: u64,
}

/// Reusable buffers of the solver inner loop: flat candidate rows, a row
/// build buffer, and the exit-resolution double buffer (`acc`/`tmp` refs
/// into the private `pool` row arena).
#[derive(Default)]
struct Scratch {
    cands: Vec<u64>,
    row: Vec<u64>,
    pool: Vec<u64>,
    acc: Vec<RowRef>,
    tmp: Vec<RowRef>,
}

/// Per-worker reusable solver state: the composition-local row arena, the
/// two behaviour list buffers, the worklist with its membership flags, the
/// candidate scratch, and the down-dependency edge buffer. Compositions
/// run entirely inside one workspace, so after warm-up they allocate only
/// their (flat) results.
struct Workspace {
    /// Composition-local row storage; reset per composition, seeded from
    /// the symbol base.
    arena: Vec<u64>,
    /// Root-position antichain lists (restarted from the symbol base).
    root: Vec<Vec<RowRef>>,
    /// Positional (left/right) lists (restarted from `root`).
    pos: Vec<Vec<RowRef>>,
    /// The worklist; empty between runs.
    wl: Vec<u32>,
    /// `inq[q]` ⟺ `q` is on `wl`; all-false between runs.
    inq: Vec<bool>,
    scratch: Scratch,
    /// Buffer for [`FixCtx::down_rdeps`], refilled per composition.
    down_rdeps: Vec<Vec<u32>>,
}

impl Workspace {
    fn new(n_states: usize) -> Workspace {
        Workspace {
            arena: Vec::new(),
            root: vec![Vec::new(); n_states],
            pos: vec![Vec::new(); n_states],
            wl: Vec::new(),
            inq: vec![false; n_states],
            scratch: Scratch::default(),
            down_rdeps: vec![Vec::new(); n_states],
        }
    }
}

/// The raw (un-interned) result of one composition. `left`/`right` are
/// `None` when that child position admits no up-moves, in which case the
/// positional behaviour equals the root one (no copy, no re-interning).
struct RawTriple {
    root: FlatBehavior,
    left: Option<FlatBehavior>,
    right: Option<FlatBehavior>,
    accepting: bool,
}

/// Rebuilds the reverse edges induced by `Down` actions into `deps`:
/// state `q` must be re-examined when an exit state of the child antichain
/// it consumes grows. Shared by all three runs of one composition.
fn fill_down_rdeps(
    table: &SymTable,
    (pl, pr): (&Projection, &Projection),
    words: usize,
    deps: &mut [Vec<u32>],
) {
    for v in deps.iter_mut() {
        v.clear();
    }
    for &q in &table.down_states {
        for act in table.acts(q as usize) {
            if let Act::Down { left, slot } = *act {
                let child = if left { pl } else { pr };
                for exits in child.ac(slot as usize, words).chunks_exact(words) {
                    for e in row_bits(exits) {
                        deps[e].push(q);
                    }
                }
            }
        }
    }
    for v in deps.iter_mut() {
        v.sort_unstable();
        v.dedup();
    }
}

struct Walker {
    tables: Vec<SymTable>,
    sym_index: FxHashMap<Symbol, u32>,
    n_states: usize,
    words: usize,
    initial: usize,
}

impl Walker {
    /// Compiles the automaton's rules into per-symbol CSR tables (every
    /// alphabet symbol gets one, possibly empty, so jobs and memo keys can
    /// use dense table ids) and solves each symbol's children-independent
    /// base fixpoint (counted into `stats`, like every other solver run).
    fn new(a: &PebbleAutomaton, stats: &mut JobStats) -> Result<Walker, TypecheckError> {
        if a.k() != 1 {
            return Err(TypecheckError::NeedsOnePebble { k: a.k() });
        }
        let n_states = a.core().n_states() as usize;
        let alphabet = a.input_alphabet();
        let mut sym_index: FxHashMap<Symbol, u32> = FxHashMap::default();
        let mut builders: Vec<TableBuilder> = Vec::new();
        let mut slot_of = |sym: Symbol, builders: &mut Vec<TableBuilder>| -> usize {
            *sym_index.entry(sym).or_insert_with(|| {
                builders.push(TableBuilder::new(n_states));
                (builders.len() - 1) as u32
            }) as usize
        };
        // Register alphabet symbols first (leaves, then binaries, in
        // alphabet order) so table ids are rule-order independent.
        for &sym in alphabet.leaves().iter() {
            slot_of(sym, &mut builders);
        }
        for &sym in alphabet.binaries().iter() {
            slot_of(sym, &mut builders);
        }
        for (sym, q, guard, action) in a.core().rules() {
            debug_assert!(guard.0.is_empty(), "k = 1 guards are trivial");
            let ti = slot_of(sym, &mut builders);
            let t = &mut builders[ti];
            let qi = q.0;
            match action {
                Action::Branch0 => t.acts[q.index()].push(RawAct::Accept),
                Action::Branch2(q1, q2) => {
                    t.acts[q.index()].push(RawAct::Fork(q1.0, q2.0));
                    t.rdeps[q1.index()].push(qi);
                    t.rdeps[q2.index()].push(qi);
                }
                Action::Move(m, target) => match m {
                    Move::Stay => {
                        t.acts[q.index()].push(RawAct::Stay(target.0));
                        t.rdeps[target.index()].push(qi);
                    }
                    Move::UpLeft => t.up_left.push((qi, target.0)),
                    Move::UpRight => t.up_right.push((qi, target.0)),
                    Move::DownLeft | Move::DownRight => {
                        t.acts[q.index()].push(RawAct::Down {
                            left: matches!(m, Move::DownLeft),
                            target: target.0,
                        });
                    }
                    Move::PlaceNew | Move::PickCurrent => {
                        unreachable!("unusable at k = 1")
                    }
                },
                Action::Output0(..) | Action::Output2(..) => {
                    unreachable!("automata have no output transitions")
                }
            }
        }
        let mut walker = Walker {
            tables: builders.into_iter().map(TableBuilder::freeze).collect(),
            sym_index,
            n_states,
            words: n_states.div_ceil(64).max(1),
            initial: a.core().initial().index(),
        };
        // Base fixpoints: solve each symbol's system with `Down` candidates
        // absent (no children). Every composition restarts from here.
        let mut ws = Workspace::new(n_states);
        let mut bases: Vec<DenseBase> = Vec::with_capacity(walker.tables.len());
        for table in &walker.tables {
            let ctx = FixCtx {
                table,
                children: None,
                down_rdeps: &[],
            };
            ws.arena.clear();
            for list in ws.root.iter_mut() {
                list.clear();
            }
            for &q in &table.active {
                ws.inq[q as usize] = true;
                ws.wl.push(q);
            }
            walker.solve(
                &ctx,
                &mut ws.root,
                &mut ws.arena,
                &mut ws.wl,
                &mut ws.inq,
                &mut ws.scratch,
                stats,
            );
            let mut base = DenseBase {
                offsets: Vec::with_capacity(n_states + 1),
                rows: Vec::new(),
                pcs: Vec::new(),
            };
            base.offsets.push(0);
            for list in &ws.root {
                for e in list {
                    base.rows
                        .extend_from_slice(row_at(&ws.arena, e.id, walker.words));
                    base.pcs.push(e.pc);
                }
                base.offsets.push(base.pcs.len() as u32);
            }
            bases.push(base);
        }
        for (table, base) in walker.tables.iter_mut().zip(bases) {
            table.base = base;
        }
        Ok(walker)
    }

    fn slot(&self, sym: Symbol) -> u32 {
        self.sym_index[&sym]
    }

    /// Pushes all resolution candidates of state `q` against the current
    /// `r` into `scratch.cands` as flat rows. Candidates need not be
    /// mutually minimal — the [`ac_insert_min`] merge in [`Walker::solve`]
    /// filters them.
    fn candidates(
        &self,
        ctx: &FixCtx<'_>,
        r: &[Vec<RowRef>],
        arena: &[u64],
        q: usize,
        scratch: &mut Scratch,
    ) {
        let words = self.words;
        for act in ctx.table.acts(q) {
            match *act {
                Act::Accept => {
                    let n = scratch.cands.len();
                    scratch.cands.resize(n + words, 0);
                }
                Act::Fork(q1, q2) => {
                    for x in &r[q1 as usize] {
                        let xa = row_at(arena, x.id, words);
                        for y in &r[q2 as usize] {
                            let ya = row_at(arena, y.id, words);
                            scratch.cands.extend(xa.iter().zip(ya).map(|(a, b)| a | b));
                        }
                    }
                }
                Act::Stay(p) => {
                    for x in &r[p as usize] {
                        scratch.cands.extend_from_slice(row_at(arena, x.id, words));
                    }
                }
                Act::Down { left, slot } => {
                    let Some((pl, pr)) = ctx.children else {
                        continue;
                    };
                    let child = if left { pl } else { pr };
                    for exits in child.ac(slot as usize, words).chunks_exact(words) {
                        self.resolve_exits(exits, r, arena, scratch);
                    }
                }
            }
        }
    }

    /// Exit states returned by a child must all resolve at the current
    /// node: pushes the minimal unions over one choice of resolution per
    /// exit state into `scratch.cands` (nothing when some exit state
    /// cannot resolve yet). The intermediate antichains live in the
    /// scratch `pool` row arena.
    fn resolve_exits(
        &self,
        exits: &[u64],
        r: &[Vec<RowRef>],
        arena: &[u64],
        scratch: &mut Scratch,
    ) {
        let words = self.words;
        let Scratch {
            cands,
            row,
            pool,
            acc,
            tmp,
        } = scratch;
        pool.clear();
        pool.resize(words, 0); // row 0 = the empty union
        acc.clear();
        acc.push(RowRef { id: 0, pc: 0 });
        for q in row_bits(exits) {
            if r[q].is_empty() {
                return; // this exit state cannot resolve (yet)
            }
            tmp.clear();
            for x in acc.iter() {
                let xs = x.id as usize * words;
                for y in &r[q] {
                    let ya = row_at(arena, y.id, words);
                    row.clear();
                    row.extend(pool[xs..xs + words].iter().zip(ya).map(|(a, b)| a | b));
                    ac_insert_min(tmp, pool, words, row);
                }
            }
            std::mem::swap(acc, tmp);
        }
        for e in acc.iter() {
            let s = e.id as usize * words;
            cands.extend_from_slice(&pool[s..s + words]);
        }
    }

    /// Chaotic-iteration worklist loop: pops a state, recomputes its
    /// candidates, and re-enqueues its readers when its antichain grew.
    /// On entry `wl` must list every state whose candidates may exceed `r`
    /// and `inq` must flag exactly the listed states; on exit `wl` is
    /// empty and `inq` all-false again, ready for the next run.
    #[allow(clippy::too_many_arguments)]
    fn solve(
        &self,
        ctx: &FixCtx<'_>,
        r: &mut [Vec<RowRef>],
        arena: &mut Vec<u64>,
        wl: &mut Vec<u32>,
        inq: &mut [bool],
        scratch: &mut Scratch,
        stats: &mut JobStats,
    ) {
        let words = self.words;
        stats.peak = stats.peak.max(wl.len() as u64);
        while let Some(q) = wl.pop() {
            inq[q as usize] = false;
            stats.steps += 1;
            self.candidates(ctx, r, arena, q as usize, scratch);
            let cands = std::mem::take(&mut scratch.cands);
            let mut grew = false;
            for chunk in cands.chunks_exact(words) {
                grew |= ac_insert_min(&mut r[q as usize], arena, words, chunk);
            }
            scratch.cands = cands;
            scratch.cands.clear();
            if !grew {
                continue;
            }
            for &d in ctx.table.rdeps(q as usize) {
                if !inq[d as usize] {
                    inq[d as usize] = true;
                    wl.push(d);
                }
            }
            if let Some(deps) = ctx.down_rdeps.get(q as usize) {
                for &d in deps {
                    if !inq[d as usize] {
                        inq[d as usize] = true;
                        wl.push(d);
                    }
                }
            }
            stats.peak = stats.peak.max(wl.len() as u64);
        }
    }

    /// Extends the root least fixpoint with a child position's up-move
    /// exits, solving into the reusable `pos` buffer. Sound because the
    /// root solution is below the positional least fixpoint and chaotic
    /// iteration from any such point converges to it — only the up
    /// increments need re-propagation. The `pos` lists share the arena
    /// with `root` (rows are immutable, so the restart copies refs, not
    /// rows). Returns `None` when there are no up-moves for this position
    /// (behaviour = root's).
    #[allow(clippy::too_many_arguments)]
    fn extend_up(
        &self,
        ctx: &FixCtx<'_>,
        root: &[Vec<RowRef>],
        pos: &mut [Vec<RowRef>],
        arena: &mut Vec<u64>,
        ups: &[(u32, u32)],
        wl: &mut Vec<u32>,
        inq: &mut [bool],
        scratch: &mut Scratch,
        stats: &mut JobStats,
    ) -> Option<FlatBehavior> {
        if ups.is_empty() {
            return None;
        }
        for (p, r) in pos.iter_mut().zip(root) {
            p.clone_from(r);
        }
        for &(q, target) in ups {
            scratch.row.clear();
            scratch.row.resize(self.words, 0);
            scratch.row[target as usize / 64] |= 1u64 << (target as usize % 64);
            if !ac_insert_min(&mut pos[q as usize], arena, self.words, &scratch.row) {
                continue;
            }
            for &d in ctx.table.rdeps(q as usize) {
                if !inq[d as usize] {
                    inq[d as usize] = true;
                    wl.push(d);
                }
            }
            if let Some(deps) = ctx.down_rdeps.get(q as usize) {
                for &d in deps {
                    if !inq[d as usize] {
                        inq[d as usize] = true;
                        wl.push(d);
                    }
                }
            }
        }
        self.solve(ctx, pos, arena, wl, inq, scratch, stats);
        Some(flatten(pos, arena, self.words))
    }

    /// One full composition: the root fixpoint (restarted from the symbol
    /// base) plus its left/right up-move extensions. Pure apart from the
    /// workspace buffers — reads only frozen tables and projections, so it
    /// is safe to run from worker threads with per-worker workspaces.
    fn compose(
        &self,
        table_idx: u32,
        children: Option<(&Projection, &Projection)>,
        ws: &mut Workspace,
        stats: &mut JobStats,
    ) -> RawTriple {
        let table = &self.tables[table_idx as usize];
        let words = self.words;
        let Workspace {
            arena,
            root,
            pos,
            wl,
            inq,
            scratch,
            down_rdeps,
        } = ws;
        // Seed root from the symbol base: one slice copy plus ref lists.
        arena.clear();
        arena.extend_from_slice(&table.base.rows);
        for (q, list) in root.iter_mut().enumerate() {
            list.clear();
            let (s, e) = (table.base.offsets[q], table.base.offsets[q + 1]);
            list.extend((s..e).map(|i| RowRef {
                id: i,
                pc: table.base.pcs[i as usize],
            }));
        }
        let use_down = table.has_down && children.is_some();
        if use_down {
            fill_down_rdeps(
                table,
                children.expect("gated on children"),
                words,
                down_rdeps,
            );
        }
        let ctx = FixCtx {
            table,
            children,
            down_rdeps: if use_down { down_rdeps.as_slice() } else { &[] },
        };
        // Root run: only the `Down` candidates can exceed the base.
        if use_down && !table.down_states.is_empty() {
            for &q in &table.down_states {
                inq[q as usize] = true;
                wl.push(q);
            }
            self.solve(&ctx, root, arena, wl, inq, scratch, stats);
        }
        // Accepting iff the initial configuration resolves with no exits
        // (the popcount-sorted list puts an empty row first if present).
        let accepting = root[self.initial].first().is_some_and(|e| e.pc == 0);
        let left = self.extend_up(
            &ctx,
            root,
            pos,
            arena,
            &table.up_left,
            wl,
            inq,
            scratch,
            stats,
        );
        let right = self.extend_up(
            &ctx,
            root,
            pos,
            arena,
            &table.up_right,
            wl,
            inq,
            scratch,
            stats,
        );
        let rows = (arena.len() / words) as u64;
        stats.rows += rows;
        stats.row_peak = stats.row_peak.max(rows);
        RawTriple {
            root: flatten(root, arena, words),
            left,
            right,
            accepting,
        }
    }
}

/// A composition job: dense symbol-table id plus the children's projection
/// ids (`None` for a leaf).
#[derive(Clone, Copy)]
struct Job {
    table: u32,
    children: Option<(ProjId, ProjId)>,
}

/// Evaluates a batch of composition jobs, in parallel when the batch, the
/// thread budget *and* the parallel threshold allow it. Results come back
/// in job order, so the (sequential) interning that follows is independent
/// of scheduling.
///
/// The parallel path is a work-stealing chunked scheduler: the job list is
/// split into contiguous `chunk`-sized ranges dealt round-robin onto
/// per-worker deques; a worker pops its own deque from the front and, when
/// empty, steals the back half of the first non-empty victim deque. A
/// worker quits after one full scan finds every deque empty (in-flight
/// chunks are owned — and finished — by their current holder, so no work
/// is lost). Scheduling affects only wall time: results are keyed by job
/// index and every counter that lands in [`WalkStats`] is a sum or max
/// over jobs.
///
/// The threshold gate exists because a composition job is cheap (≈10 µs on
/// the flagship instances): below a measured batch size the fixed cost of
/// spawning a worker crew plus the loss of the sequential run's warm
/// workspace outweighs the speedup, and `--threads auto` would *lose* to
/// `--threads 1` (BENCH_typecheck.json schema 4 recorded 147.7 ms parallel
/// vs 116.5 ms sequential on Q2/mod-3, whose batches peak at 2 448 jobs).
#[allow(clippy::too_many_arguments)]
fn compute_batch(
    walker: &Walker,
    jobs: &[Job],
    projs: &[Projection],
    threads: usize,
    parallel_threshold: usize,
    chunk: usize,
    agg: &mut JobStats,
) -> Vec<RawTriple> {
    let jour = journal::enabled();
    let run_one = |job: &Job, ws: &mut Workspace, stats: &mut JobStats| -> RawTriple {
        if jour {
            journal::begin("walk.job");
        }
        let children = job
            .children
            .map(|(l, r)| (&projs[l as usize], &projs[r as usize]));
        let raw = walker.compose(job.table, children, ws, stats);
        if jour {
            journal::end("walk.job");
        }
        raw
    };
    if threads <= 1 || jobs.len() < parallel_threshold.max(2) {
        let mut ws = Workspace::new(walker.n_states);
        return jobs.iter().map(|j| run_one(j, &mut ws, agg)).collect();
    }
    agg.par_batches += 1;
    let workers = threads.min(jobs.len());
    let csize = chunk.max(1);
    let n_chunks = jobs.len().div_ceil(csize);
    agg.chunks += n_chunks as u64;
    let queues: Vec<Mutex<VecDeque<(u32, u32)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for c in 0..n_chunks {
        let start = c * csize;
        let end = (start + csize).min(jobs.len());
        queues[c % workers]
            .lock()
            .expect("deal queue")
            .push_back((start as u32, end as u32));
    }
    let remaining = AtomicUsize::new(jobs.len());
    let steals = AtomicU64::new(0);
    let mut out: Vec<Option<RawTriple>> = Vec::with_capacity(jobs.len());
    out.resize_with(jobs.len(), || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let queues = &queues;
                let remaining = &remaining;
                let steals = &steals;
                let run_one = &run_one;
                // Workers carry stable names so successive frontier crews
                // merge into one per-worker timeline track in trace output.
                std::thread::Builder::new()
                    .name(format!("walk-worker-{w}"))
                    .spawn_scoped(scope, move || {
                        if jour {
                            journal::begin("walk.worker");
                        }
                        let mut local: Vec<(usize, RawTriple)> = Vec::new();
                        let mut ws = Workspace::new(walker.n_states);
                        let mut stats = JobStats::default();
                        'work: loop {
                            let range = queues[w].lock().expect("own queue").pop_front();
                            let (start, end) = match range {
                                Some(r) => r,
                                None => {
                                    // Steal: one scan over the victims; on
                                    // a hit take the back half of their
                                    // deque, else quit.
                                    let mut got = None;
                                    for off in 1..workers {
                                        let v = (w + off) % workers;
                                        let mut vq = queues[v].lock().expect("victim queue");
                                        let n = vq.len();
                                        if n == 0 {
                                            continue;
                                        }
                                        let take = n.div_ceil(2);
                                        let mut tail = vq.split_off(n - take);
                                        drop(vq);
                                        steals.fetch_add(1, Ordering::Relaxed);
                                        let first = tail.pop_front().expect("nonempty steal");
                                        if !tail.is_empty() {
                                            let mut own = queues[w].lock().expect("own queue");
                                            own.append(&mut tail);
                                        }
                                        got = Some(first);
                                        break;
                                    }
                                    match got {
                                        Some(r) => r,
                                        None => break 'work,
                                    }
                                }
                            };
                            let (start, end) = (start as usize, end as usize);
                            for (i, job) in jobs.iter().enumerate().take(end).skip(start) {
                                local.push((i, run_one(job, &mut ws, &mut stats)));
                                let left = remaining.fetch_sub(1, Ordering::Relaxed) - 1;
                                if jour {
                                    journal::counter("walk.jobs_remaining", left as u64);
                                }
                            }
                        }
                        if jour {
                            journal::end("walk.worker");
                        }
                        (local, stats)
                    })
                    .expect("spawn walk worker")
            })
            .collect();
        for h in handles {
            let (local, stats) = h.join().expect("walk worker panicked");
            agg.steps += stats.steps;
            agg.peak = agg.peak.max(stats.peak);
            agg.rows += stats.rows;
            agg.row_peak = agg.row_peak.max(stats.row_peak);
            for (i, raw) in local {
                out[i] = Some(raw);
            }
        }
    });
    if jour {
        journal::counter("walk.steals", steals.load(Ordering::Relaxed));
    }
    out.into_iter()
        .map(|o| o.expect("every job computed"))
        .collect()
}

/// Interns a raw composition result: the root behaviour, then the
/// positional ones (which alias the root when the position admits no
/// up-moves). Main-thread only, in canonical job order — arena ids are
/// therefore thread-count independent.
fn intern_raw(raw: RawTriple, behaviors: &mut BehaviorArena, words: usize) -> TripleIds {
    let root_id = behaviors.intern(raw.root, words);
    let position = |b: Option<FlatBehavior>, behaviors: &mut BehaviorArena| match b {
        Some(b) => behaviors.intern(b, words),
        None => root_id,
    };
    TripleIds {
        left: position(raw.left, behaviors),
        right: position(raw.right, behaviors),
        accepting: raw.accepting,
    }
}

/// Assigns (or retrieves) the DBTA state of an interned triple, honoring
/// the class budget exactly as the reference build did.
fn intern_triple(
    ids: TripleIds,
    triples: &mut Vec<TripleIds>,
    index: &mut FxHashMap<TripleIds, State>,
    limit: u32,
) -> Result<State, TypecheckError> {
    if let Some(&q) = index.get(&ids) {
        return Ok(q);
    }
    let q = State(triples.len() as u32);
    if q.0 >= limit {
        return Err(TypecheckError::TooManyStates { n: q.0 + 1 });
    }
    index.insert(ids, q);
    triples.push(ids);
    Ok(q)
}

/// Options for [`walking_to_dbta_with`].
#[derive(Clone, Copy, Debug)]
pub struct WalkOptions {
    /// Budget on behaviour classes (congruence states); `u32::MAX` =
    /// unlimited.
    pub limit: u32,
    /// Worker threads for the composition frontier; `0` resolves via
    /// [`resolve_threads`].
    pub threads: usize,
    /// Minimum frontier-batch size (composition jobs) before a worker crew
    /// is spawned; smaller batches run sequentially even when `threads >
    /// 1`, so an auto-resolved thread count never loses to `--threads 1`
    /// on small instances. `0` resolves via [`resolve_parallel_threshold`]
    /// (the `XMLTC_PAR_THRESHOLD` environment variable, else
    /// [`PARALLEL_JOB_THRESHOLD`]); `1` forces the parallel path for every
    /// batch of at least two jobs.
    pub parallel_threshold: usize,
    /// Jobs per work-stealing chunk on the parallel path; `0` resolves via
    /// [`resolve_chunk`] (the `XMLTC_CHUNK` environment variable, else
    /// [`WORK_CHUNK`]). Chunk size affects wall time only, never results
    /// or deterministic counters.
    pub chunk: usize,
}

impl Default for WalkOptions {
    fn default() -> Self {
        WalkOptions {
            limit: u32::MAX,
            threads: 0,
            parallel_threshold: 0,
            chunk: 0,
        }
    }
}

/// Counters describing one [`walking_to_dbta_with`] run. All fields are
/// deterministic — independent of the thread count used.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalkStats {
    /// Transition-table pairs `(symbol, s₁, s₂)` resolved.
    pub pairs: u64,
    /// Composition requests: one per leaf symbol plus one per
    /// transition-table pair (`compositions = memo_hits + memo_misses`).
    pub compositions: u64,
    /// Pair requests resolved from the projected-key memo without a
    /// fixpoint run.
    pub memo_hits: u64,
    /// Requests that *did* require a fixpoint run: the leaf symbols plus
    /// the distinct projected memo keys.
    pub memo_misses: u64,
    /// Total worklist pops across all fixpoint runs.
    pub fixpoint_steps: u64,
    /// Peak worklist length of any single fixpoint run.
    pub worklist_peak: u64,
    /// Frontier generations (compute → intern → replay cycles).
    pub rounds: u64,
    /// Worker threads the frontier was evaluated with.
    pub threads: u64,
    /// Frontier batches that actually spawned a worker crew (batches below
    /// the parallel threshold run sequentially regardless of `threads`).
    pub parallel_batches: u64,
    /// The resolved parallel threshold the run was gated on.
    pub parallel_threshold: u64,
    /// Distinct exit-set rows (masks) occurring in interned behaviours.
    pub masks_interned: u64,
    /// Distinct behaviours interned.
    pub behaviors_interned: u64,
    /// States of the resulting DBTA.
    pub dbta_states: u64,
    /// Bitset row width of the kernel, in `u64` words.
    pub words: u64,
    /// Total arena rows written across all compositions (live + shadowed).
    pub kernel_rows: u64,
    /// Peak arena rows of any single composition.
    pub kernel_row_peak: u64,
    /// Distinct behaviour projections interned for memo keys.
    pub projections_interned: u64,
    /// The resolved work-stealing chunk size (jobs per chunk).
    pub chunk_size: u64,
    /// Chunks dealt across all parallel batches.
    pub chunks: u64,
}

impl WalkStats {
    /// Fraction of composition requests resolved from the memo, in
    /// `[0, 1]`. Defined as `0.0` when no requests were made at all (a
    /// trivial automaton), so the value is always finite — never the `NaN`
    /// a bare `hits / (hits + misses)` would produce in JSON/bench output.
    pub fn memo_hit_rate(&self) -> f64 {
        let total = self.memo_hits + self.memo_misses;
        if total == 0 {
            0.0
        } else {
            self.memo_hits as f64 / total as f64
        }
    }
}

/// Resolves a requested frontier thread count: an explicit `n > 0` wins,
/// else the `XMLTC_THREADS` environment variable, else the machine's
/// available parallelism (1 when unknown).
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Some(n) = std::env::var("XMLTC_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        if n > 0 {
            return n;
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Default minimum frontier-batch size for the parallel path, measured on
/// the flagship Q2/mod-3 instance (see DESIGN.md "Walk-route performance"):
/// its batches peak at 2 448 jobs and 4-thread evaluation is still ~27%
/// *slower* than sequential there, while crews pay for themselves once a
/// batch carries several thousand ≈10 µs jobs. Below this bound the
/// spawn-and-join overhead plus the cold per-worker workspaces dominate.
pub const PARALLEL_JOB_THRESHOLD: usize = 4096;

/// Resolves a requested parallel threshold: an explicit `n > 0` wins, else
/// the `XMLTC_PAR_THRESHOLD` environment variable, else
/// [`PARALLEL_JOB_THRESHOLD`].
pub fn resolve_parallel_threshold(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Some(n) = std::env::var("XMLTC_PAR_THRESHOLD")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        if n > 0 {
            return n;
        }
    }
    PARALLEL_JOB_THRESHOLD
}

/// Default jobs-per-chunk for the work-stealing frontier, measured on the
/// scaled `walk-scale` family (see DESIGN.md "Walk kernel"): chunks of 16
/// amortize the deque locking to <1% of a chunk's compute while leaving
/// hundreds of stealable chunks per round, so the tail imbalance stays
/// below one chunk per worker. Larger chunks starve the thieves on skewed
/// rounds; chunk 1 doubles scheduler overhead for no balance gain.
pub const WORK_CHUNK: usize = 16;

/// Resolves a requested work-stealing chunk size: an explicit `n > 0`
/// wins, else the `XMLTC_CHUNK` environment variable, else [`WORK_CHUNK`].
pub fn resolve_chunk(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Some(n) = std::env::var("XMLTC_CHUNK")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        if n > 0 {
            return n;
        }
    }
    WORK_CHUNK
}

/// Converts a 1-pebble (branching tree-walking) automaton into an
/// equivalent deterministic bottom-up tree automaton, returning the
/// construction counters alongside.
///
/// Errors when `k ≠ 1` or the behaviour-class budget is exceeded. The
/// output is bit-identical for every thread count and chunk size: workers
/// only evaluate pure compositions, and all interning happens sequentially
/// in a canonical order.
pub fn walking_to_dbta_with(
    a: &PebbleAutomaton,
    opts: &WalkOptions,
) -> Result<(Dbta, WalkStats), TypecheckError> {
    let mut job_stats = JobStats::default();
    let walker = Walker::new(a, &mut job_stats)?;
    let threads = resolve_threads(opts.threads);
    let parallel_threshold = resolve_parallel_threshold(opts.parallel_threshold);
    let chunk = resolve_chunk(opts.chunk);
    let limit = opts.limit;
    let alphabet = a.input_alphabet();
    let words = walker.words;

    let mut behaviors = BehaviorArena::default();
    let mut projector = Projector::new(walker.tables.len());
    let mut triples: Vec<TripleIds> = Vec::new();
    let mut index: FxHashMap<TripleIds, State> = FxHashMap::default();
    let mut memo: FxHashMap<(u32, ProjId, ProjId), TripleIds> = FxHashMap::default();
    let mut leaf: FxHashMap<Symbol, State> = FxHashMap::default();
    let mut node: FxHashMap<(Symbol, State, State), State> = FxHashMap::default();
    let mut rounds = 0u64;

    // Leaf triples, in alphabet order (canonical).
    let leaf_syms = alphabet.leaves();
    let leaf_jobs: Vec<Job> = leaf_syms
        .iter()
        .map(|&s| Job {
            table: walker.slot(s),
            children: None,
        })
        .collect();
    let raws = compute_batch(
        &walker,
        &leaf_jobs,
        &projector.arena.projs,
        threads,
        parallel_threshold,
        chunk,
        &mut job_stats,
    );
    for (&sym, raw) in leaf_syms.iter().zip(raws) {
        let ids = intern_raw(raw, &mut behaviors, words);
        let q = intern_triple(ids, &mut triples, &mut index, limit)?;
        leaf.insert(sym, q);
    }

    let binaries = alphabet.binaries();
    // Incremental scan state: `scanned` counts triples whose pair-space
    // the frontier has already enumerated, and `col[s]` is the replay's
    // per-row column cursor. Both only advance, so across the whole
    // construction every `(x, y)` pair is enumerated exactly once by the
    // frontier and processed exactly once by the replay — rescanning
    // per round was the dominant sequential cost on saturated frontiers
    // (O(rounds · m²) hash probes for an m-class machine).
    let mut scanned = 0usize;
    let mut col: Vec<u32> = Vec::new();
    loop {
        rounds += 1;
        // Frontier: every composition key over pairs involving a triple
        // interned since the last scan — a pair between older triples
        // already has its key in `memo` (enumerated in a previous round),
        // so only the new rows and columns can need jobs. Enumeration
        // order (new-triple-major, `(t, 0..=t)` then `(0..t, t)`, symbols
        // innermost) is a pure function of the interned-triple sequence,
        // hence thread-invariant; jobs are deduped on the projected key so
        // identical jobs solve once per round.
        let mut jobs: Vec<Job> = Vec::new();
        let mut seen: FxHashSet<(u32, ProjId, ProjId)> = FxHashSet::default();
        let len = triples.len();
        for t in scanned..len {
            for p in 0..=2 * t {
                let (x, y) = if p <= t { (t, p) } else { (p - t - 1, t) };
                for &sym in &binaries {
                    if node.contains_key(&(sym, State(x as u32), State(y as u32))) {
                        continue;
                    }
                    let ti = walker.slot(sym);
                    let key = (
                        ti,
                        projector.id(&walker, &behaviors, ti, 0, triples[x].left),
                        projector.id(&walker, &behaviors, ti, 1, triples[y].right),
                    );
                    if !memo.contains_key(&key) && seen.insert(key) {
                        jobs.push(Job {
                            table: ti,
                            children: Some((key.1, key.2)),
                        });
                    }
                }
            }
        }
        scanned = len;
        if journal::enabled() {
            journal::instant("walk.round");
            journal::counter("walk.frontier_jobs", jobs.len() as u64);
        }
        if !jobs.is_empty() {
            let raws = compute_batch(
                &walker,
                &jobs,
                &projector.arena.projs,
                threads,
                parallel_threshold,
                chunk,
                &mut job_stats,
            );
            for (job, raw) in jobs.iter().zip(raws) {
                let (l, r) = job.children.expect("binary job");
                let ids = intern_raw(raw, &mut behaviors, words);
                memo.insert((job.table, l, r), ids);
            }
        }

        // Canonical replay: interns triples and transitions in a fixed
        // deterministic order — row-major over the triple table, each row
        // advancing its persistent column cursor, repeated in passes until
        // every row has caught up with the (growing) table. The order is a
        // pure function of the interned-triple sequence, so the DBTA
        // numbering is identical at every thread count. Aborts (for
        // another frontier round) at the first composition not yet
        // memoized — necessarily one involving a triple first discovered
        // during this very replay; the cursors make the retry resume where
        // it stopped instead of rescanning resolved pairs.
        let mut complete = true;
        'replay: loop {
            if col.len() < triples.len() {
                col.resize(triples.len(), 0);
            }
            let mut progressed = false;
            let mut s1i = 0usize;
            while s1i < triples.len() {
                let s1 = State(s1i as u32);
                while (col[s1i] as usize) < triples.len() {
                    let s2 = State(col[s1i]);
                    for &sym in &binaries {
                        for (x, y) in [(s1, s2), (s2, s1)] {
                            if node.contains_key(&(sym, x, y)) {
                                continue;
                            }
                            let ti = walker.slot(sym);
                            let key = (
                                ti,
                                projector.id(&walker, &behaviors, ti, 0, triples[x.index()].left),
                                projector.id(&walker, &behaviors, ti, 1, triples[y.index()].right),
                            );
                            let Some(&ids) = memo.get(&key) else {
                                complete = false;
                                break 'replay;
                            };
                            let q = intern_triple(ids, &mut triples, &mut index, limit)?;
                            node.insert((sym, x, y), q);
                        }
                    }
                    col[s1i] += 1;
                    progressed = true;
                    if col.len() < triples.len() {
                        col.resize(triples.len(), 0);
                    }
                }
                s1i += 1;
            }
            if !progressed {
                break;
            }
        }
        if journal::enabled() {
            journal::counter("walk.triples", triples.len() as u64);
            journal::counter("walk.masks_arena", behaviors.rows_seen.len() as u64);
            journal::counter("walk.behaviors_arena", behaviors.behaviors.len() as u64);
            journal::counter("walk.projections_arena", projector.arena.projs.len() as u64);
            journal::counter("walk.memo_misses", (leaf.len() + memo.len()) as u64);
            journal::counter(
                "walk.memo_hits",
                node.len().saturating_sub(memo.len()) as u64,
            );
        }
        if complete {
            break;
        }
    }

    let finals: StateSet = triples
        .iter()
        .enumerate()
        .filter(|(_, t)| t.accepting)
        .map(|(i, _)| State(i as u32))
        .collect();
    let stats = WalkStats {
        pairs: node.len() as u64,
        compositions: (leaf.len() + node.len()) as u64,
        memo_hits: (node.len() - memo.len()) as u64,
        memo_misses: (leaf.len() + memo.len()) as u64,
        fixpoint_steps: job_stats.steps,
        worklist_peak: job_stats.peak,
        rounds,
        threads: threads as u64,
        parallel_batches: job_stats.par_batches,
        parallel_threshold: parallel_threshold as u64,
        masks_interned: behaviors.rows_seen.len() as u64,
        behaviors_interned: behaviors.behaviors.len() as u64,
        dbta_states: triples.len() as u64,
        words: words as u64,
        kernel_rows: job_stats.rows,
        kernel_row_peak: job_stats.row_peak,
        projections_interned: projector.arena.projs.len() as u64,
        chunk_size: chunk as u64,
        chunks: job_stats.chunks,
    };
    let d = Dbta::from_parts(alphabet, triples.len() as u32, leaf, node, finals);
    Ok((d, stats))
}

/// Converts a 1-pebble (branching tree-walking) automaton into an
/// equivalent deterministic bottom-up tree automaton.
///
/// Errors when `k ≠ 1`. The `limit` bounds the number of behaviour classes
/// (congruence states) explored.
pub fn walking_to_dbta_limited(a: &PebbleAutomaton, limit: u32) -> Result<Dbta, TypecheckError> {
    walking_to_dbta_with(
        a,
        &WalkOptions {
            limit,
            ..Default::default()
        },
    )
    .map(|(d, _)| d)
}

/// [`walking_to_dbta_limited`] without a class budget.
pub fn walking_to_dbta(a: &PebbleAutomaton) -> Result<Dbta, TypecheckError> {
    walking_to_dbta_limited(a, u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use xmltc_core::accepts;
    use xmltc_core::machine::{AutomatonBuilder, Guard, SymSpec};
    use xmltc_trees::{Alphabet, BinaryTree};

    fn alpha() -> Arc<Alphabet> {
        Alphabet::ranked(&["x", "y"], &["f"])
    }

    const TREES: [&str; 10] = [
        "x",
        "y",
        "f(x, y)",
        "f(y, x)",
        "f(x, x)",
        "f(x, f(x, x))",
        "f(f(y, x), x)",
        "f(f(x, x), f(x, y))",
        "f(f(x, y), f(y, x))",
        "f(f(f(x, x), x), y)",
    ];

    fn agree(a: &PebbleAutomaton) {
        let al = a.input_alphabet().clone();
        let d = walking_to_dbta(a).unwrap();
        for src in TREES {
            let t = BinaryTree::parse(src, &al).unwrap();
            assert_eq!(
                d.accepts(&t).unwrap(),
                accepts(a, &t).unwrap(),
                "disagreement on {src}"
            );
        }
        // The construction must be invariant under the thread count and
        // chunk size: same states, transitions, finals, and counters.
        let opts1 = WalkOptions {
            threads: 1,
            ..Default::default()
        };
        // threshold 1 forces the worker-crew path even on these tiny
        // batches, so the parallel machinery stays under test; chunk 1
        // maximizes stealing opportunities.
        let opts4 = WalkOptions {
            threads: 4,
            parallel_threshold: 1,
            ..Default::default()
        };
        let opts8 = WalkOptions {
            threads: 8,
            parallel_threshold: 1,
            chunk: 1,
            ..Default::default()
        };
        let (d1, s1) = walking_to_dbta_with(a, &opts1).unwrap();
        let (d4, s4) = walking_to_dbta_with(a, &opts4).unwrap();
        let (d8, s8) = walking_to_dbta_with(a, &opts8).unwrap();
        assert_eq!(d1, d4, "thread count changed the DBTA");
        assert_eq!(d1, d8, "chunk size changed the DBTA");
        assert_eq!(d1, d, "explicit thread count changed the DBTA");
        for s in [&s4, &s8] {
            assert_eq!(
                (s1.pairs, s1.compositions, s1.memo_hits, s1.dbta_states),
                (s.pairs, s.compositions, s.memo_hits, s.dbta_states),
                "scheduling changed the counters"
            );
            assert_eq!(s1.memo_misses, s.memo_misses);
            assert_eq!(s1.kernel_rows, s.kernel_rows);
            assert_eq!(s1.kernel_row_peak, s.kernel_row_peak);
            assert_eq!(s1.fixpoint_steps, s.fixpoint_steps);
            assert_eq!(s1.projections_interned, s.projections_interned);
        }
        // Accounting invariants: every request is a hit or a miss, and
        // there is one request per leaf symbol plus one per pair.
        assert_eq!(s1.memo_hits + s1.memo_misses, s1.compositions);
        assert_eq!(s1.compositions, s1.pairs + 2 /* leaves */);
    }

    #[test]
    fn memo_hit_rate_is_always_finite() {
        // The 0/0 case — no requests at all — must not be NaN.
        let empty = WalkStats::default();
        assert_eq!(empty.memo_hit_rate(), 0.0);
        assert!(empty.memo_hit_rate().is_finite());
        let s = WalkStats {
            memo_hits: 3,
            memo_misses: 1,
            ..WalkStats::default()
        };
        assert_eq!(s.memo_hit_rate(), 0.75);
        let all_miss = WalkStats {
            memo_misses: 5,
            ..WalkStats::default()
        };
        assert_eq!(all_miss.memo_hit_rate(), 0.0);
    }

    // ---- dense kernel unit suite ----------------------------------------

    /// Builds a row from bit positions at the given word width.
    fn row(bits: &[usize], words: usize) -> Vec<u64> {
        let mut r = vec![0u64; words];
        for &b in bits {
            r[b / 64] |= 1u64 << (b % 64);
        }
        r
    }

    #[test]
    fn row_ops_multi_word() {
        let words = 5; // a 300-state machine's width
        let a = row(&[0, 64, 190, 299], words);
        let b = row(&[0, 64, 190, 262, 299], words);
        assert!(row_subset(&a, &b));
        assert!(!row_subset(&b, &a));
        assert!(row_subset(&a, &a));
        assert_eq!(row_popcount(&a), 4);
        assert_eq!(row_popcount(&b), 5);
        assert_eq!(row_bits(&b).collect::<Vec<_>>(), vec![0, 64, 190, 262, 299]);
        let empty = row(&[], words);
        assert!(row_subset(&empty, &a));
        assert_eq!(row_popcount(&empty), 0);
        assert_eq!(row_bits(&empty).count(), 0);
    }

    #[test]
    fn ac_insert_rejects_supersets() {
        let words = 2;
        let mut arena: Vec<u64> = Vec::new();
        let mut ac: Vec<RowRef> = Vec::new();
        assert!(ac_insert_min(&mut ac, &mut arena, words, &row(&[3], words)));
        // A superset of an existing row adds nothing.
        assert!(!ac_insert_min(
            &mut ac,
            &mut arena,
            words,
            &row(&[3, 70], words)
        ));
        // An identical row adds nothing (equal popcount, subset = equality).
        assert!(!ac_insert_min(
            &mut ac,
            &mut arena,
            words,
            &row(&[3], words)
        ));
        assert_eq!(ac.len(), 1);
    }

    #[test]
    fn ac_insert_drops_dominated_rows() {
        let words = 2;
        let mut arena: Vec<u64> = Vec::new();
        let mut ac: Vec<RowRef> = Vec::new();
        assert!(ac_insert_min(
            &mut ac,
            &mut arena,
            words,
            &row(&[1, 2, 65], words)
        ));
        assert!(ac_insert_min(
            &mut ac,
            &mut arena,
            words,
            &row(&[1, 3, 66], words)
        ));
        assert!(ac_insert_min(
            &mut ac,
            &mut arena,
            words,
            &row(&[4, 5], words)
        ));
        // {1, 65} kills {1, 2, 65} but not {1, 3, 66} or {4, 5}.
        assert!(ac_insert_min(
            &mut ac,
            &mut arena,
            words,
            &row(&[1, 65], words)
        ));
        assert_eq!(ac.len(), 3);
        // The empty row dominates everything.
        assert!(ac_insert_min(&mut ac, &mut arena, words, &row(&[], words)));
        assert_eq!(ac.len(), 1);
        assert_eq!(ac[0].pc, 0);
        // Nothing can be added past the empty row.
        assert!(!ac_insert_min(
            &mut ac,
            &mut arena,
            words,
            &row(&[7], words)
        ));
    }

    #[test]
    fn ac_insert_keeps_popcount_order() {
        let words = 1;
        let mut arena: Vec<u64> = Vec::new();
        let mut ac: Vec<RowRef> = Vec::new();
        for bits in [&[1usize, 2, 3][..], &[4][..], &[5, 6][..]] {
            assert!(ac_insert_min(&mut ac, &mut arena, words, &row(bits, words)));
        }
        let pcs: Vec<u32> = ac.iter().map(|e| e.pc).collect();
        assert_eq!(pcs, vec![1, 2, 3]);
        // Incomparable same-popcount rows coexist.
        assert!(ac_insert_min(&mut ac, &mut arena, words, &row(&[7], words)));
        assert_eq!(
            ac.iter().map(|e| e.pc).collect::<Vec<_>>(),
            vec![1, 1, 2, 3]
        );
    }

    /// End-to-end over a >256-state machine (words = 5 > the old inline
    /// mask width): an or-search chained through 300 `Stay` states.
    #[test]
    fn wide_machine_multi_word_rows() {
        let al = alpha();
        let y = al.get("y").unwrap();
        let mut b = AutomatonBuilder::new(&al, 1);
        let n = 300usize;
        let states: Vec<_> = (0..n)
            .map(|i| b.state(&format!("s{i}"), 1).unwrap())
            .collect();
        b.set_initial(states[0]);
        for i in 0..n - 1 {
            b.move_rule(
                SymSpec::Any,
                states[i],
                Guard::any(),
                Move::Stay,
                states[i + 1],
            )
            .unwrap();
        }
        let last = states[n - 1];
        b.branch0(SymSpec::One(y), last, Guard::any()).unwrap();
        b.move_rule(
            SymSpec::Binaries,
            last,
            Guard::any(),
            Move::DownLeft,
            states[0],
        )
        .unwrap();
        b.move_rule(
            SymSpec::Binaries,
            last,
            Guard::any(),
            Move::DownRight,
            states[0],
        )
        .unwrap();
        let a = b.build().unwrap();
        let (_, s) = walking_to_dbta_with(&a, &WalkOptions::default()).unwrap();
        assert_eq!(s.words, 5);
        agree(&a);
    }

    /// The projected memo key collapses pairs that agree on the symbol's
    /// `Down` targets — in particular, *every* right child here, because
    /// `f` has no `DownRight` rules at all.
    #[test]
    fn projected_memo_hits_on_repeating_structure() {
        let al = alpha();
        let x = al.get("x").unwrap();
        let mut b = AutomatonBuilder::new(&al, 1);
        let q = b.state("walk", 1).unwrap();
        b.set_initial(q);
        b.move_rule(SymSpec::Binaries, q, Guard::any(), Move::DownLeft, q)
            .unwrap();
        b.branch0(SymSpec::One(x), q, Guard::any()).unwrap();
        let a = b.build().unwrap();
        let (_, s) = walking_to_dbta_with(
            &a,
            &WalkOptions {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(s.memo_hits > 0, "projection must collapse right children");
        assert_eq!(s.memo_hits + s.memo_misses, s.compositions);
        assert!(s.projections_interned > 0);
    }

    /// Walks down-left-only to check the leftmost leaf is x.
    #[test]
    fn leftmost_leaf_x() {
        let al = alpha();
        let x = al.get("x").unwrap();
        let mut b = AutomatonBuilder::new(&al, 1);
        let q = b.state("walk", 1).unwrap();
        b.set_initial(q);
        b.move_rule(SymSpec::Binaries, q, Guard::any(), Move::DownLeft, q)
            .unwrap();
        b.branch0(SymSpec::One(x), q, Guard::any()).unwrap();
        agree(&b.build().unwrap());
    }

    /// Or-search: some y leaf exists.
    #[test]
    fn some_y() {
        let al = alpha();
        let y = al.get("y").unwrap();
        let mut b = AutomatonBuilder::new(&al, 1);
        let q = b.state("search", 1).unwrap();
        b.set_initial(q);
        b.branch0(SymSpec::One(y), q, Guard::any()).unwrap();
        b.move_rule(SymSpec::Binaries, q, Guard::any(), Move::DownLeft, q)
            .unwrap();
        b.move_rule(SymSpec::Binaries, q, Guard::any(), Move::DownRight, q)
            .unwrap();
        agree(&b.build().unwrap());
    }

    /// And-branching: all leaves x.
    #[test]
    fn all_x() {
        let al = alpha();
        let x = al.get("x").unwrap();
        let mut b = AutomatonBuilder::new(&al, 1);
        let q = b.state("check", 1).unwrap();
        let l = b.state("left", 1).unwrap();
        let r = b.state("right", 1).unwrap();
        b.set_initial(q);
        b.branch0(SymSpec::One(x), q, Guard::any()).unwrap();
        b.branch2(SymSpec::Binaries, q, Guard::any(), l, r).unwrap();
        b.move_rule(SymSpec::Binaries, l, Guard::any(), Move::DownLeft, q)
            .unwrap();
        b.move_rule(SymSpec::Binaries, r, Guard::any(), Move::DownRight, q)
            .unwrap();
        agree(&b.build().unwrap());
    }

    /// A genuinely two-way machine: walk to the leftmost leaf; if it is y,
    /// walk all the way back up and then check the rightmost leaf is also
    /// y. Exercises up-moves and exit composition.
    #[test]
    fn two_way_walk() {
        let al = alpha();
        let y = al.get("y").unwrap();
        let mut b = AutomatonBuilder::new(&al, 1);
        let down = b.state("down", 1).unwrap();
        let up = b.state("up", 1).unwrap();
        let right = b.state("right", 1).unwrap();
        b.set_initial(down);
        b.move_rule(SymSpec::Binaries, down, Guard::any(), Move::DownLeft, down)
            .unwrap();
        // On a y leftmost leaf: climb.
        b.move_rule(SymSpec::One(y), down, Guard::any(), Move::UpLeft, up)
            .unwrap();
        b.move_rule(SymSpec::One(y), down, Guard::any(), Move::UpRight, up)
            .unwrap();
        b.move_rule(SymSpec::Any, up, Guard::any(), Move::UpLeft, up)
            .unwrap();
        b.move_rule(SymSpec::Any, up, Guard::any(), Move::UpRight, up)
            .unwrap();
        // From wherever climbing stops... we can't test rootness, so `up`
        // also nondeterministically switches to descending right.
        b.move_rule(SymSpec::Binaries, up, Guard::any(), Move::Stay, right)
            .unwrap();
        b.move_rule(
            SymSpec::Binaries,
            right,
            Guard::any(),
            Move::DownRight,
            right,
        )
        .unwrap();
        b.branch0(SymSpec::One(y), right, Guard::any()).unwrap();
        // Degenerate single-leaf tree: y alone accepts via the right state?
        // No — initial `down` on a leaf y has no applicable rule except the
        // up-moves, which fail at the root: single y is rejected. That is
        // the machine's semantics; the theorem only asks for agreement.
        agree(&b.build().unwrap());
    }

    /// Stay-cycles must not diverge or accept spuriously.
    #[test]
    fn stay_cycle() {
        let al = alpha();
        let mut b = AutomatonBuilder::new(&al, 1);
        let q = b.state("a", 1).unwrap();
        let p = b.state("b", 1).unwrap();
        b.set_initial(q);
        b.move_rule(SymSpec::Any, q, Guard::any(), Move::Stay, p)
            .unwrap();
        b.move_rule(SymSpec::Any, p, Guard::any(), Move::Stay, q)
            .unwrap();
        agree(&b.build().unwrap());
    }

    /// k = 2 machines are rejected by this route.
    #[test]
    fn requires_one_pebble() {
        let al = alpha();
        let mut b = AutomatonBuilder::new(&al, 2);
        let q = b.state("q", 1).unwrap();
        let q2 = b.state("q2", 2).unwrap();
        b.set_initial(q);
        b.move_rule(SymSpec::Any, q, Guard::any(), Move::PlaceNew, q2)
            .unwrap();
        b.branch0(SymSpec::Any, q2, Guard::any()).unwrap();
        let a = b.build().unwrap();
        assert!(matches!(
            walking_to_dbta(&a),
            Err(TypecheckError::NeedsOnePebble { k: 2 })
        ));
    }

    /// The class budget aborts at the same canonical point regardless of
    /// thread count or chunk size.
    #[test]
    fn limit_abort_is_thread_invariant() {
        let al = alpha();
        let y = al.get("y").unwrap();
        let mut b = AutomatonBuilder::new(&al, 1);
        let q = b.state("search", 1).unwrap();
        b.set_initial(q);
        b.branch0(SymSpec::One(y), q, Guard::any()).unwrap();
        b.move_rule(SymSpec::Binaries, q, Guard::any(), Move::DownLeft, q)
            .unwrap();
        b.move_rule(SymSpec::Binaries, q, Guard::any(), Move::DownRight, q)
            .unwrap();
        let a = b.build().unwrap();
        let full = walking_to_dbta(&a).unwrap();
        assert!(full.n_states() >= 2);
        for limit in 0..full.n_states() {
            let mut aborts = Vec::new();
            for threads in [1usize, 4] {
                let opts = WalkOptions {
                    limit,
                    threads,
                    parallel_threshold: 1,
                    chunk: 1,
                };
                match walking_to_dbta_with(&a, &opts) {
                    Err(TypecheckError::TooManyStates { n }) => aborts.push(n),
                    other => panic!("limit {limit}: expected budget abort, got {other:?}"),
                }
            }
            assert_eq!(aborts[0], aborts[1], "limit {limit}");
            assert_eq!(aborts[0], limit + 1, "abort reports the breached budget");
        }
    }
}
