//! **Theorem 4.7, efficient route for k = 1**: branching tree-walking
//! automata → deterministic bottom-up tree automata by subtree-behaviour
//! composition.
//!
//! At `k = 1` the place/pick transitions are unusable (the stack discipline
//! forbids them), so a 1-pebble automaton is exactly a *branching
//! tree-walking automaton*: a head walking up and down the tree with
//! or-nondeterminism and and-branching. This covers the paper's practical
//! cases (Section 5): top-down transducers, the XSLT fragment, selection
//! queries — after the Proposition 4.6 product these yield 1-pebble
//! violation automata.
//!
//! For a subtree `s` and entry state `q`, a *resolution* is a finite run of
//! the branch process started at `(q, root(s))` in which every branch
//! either accepts (branch0) inside `s` or exits upward from `root(s)` to
//! its parent in some state. The **behaviour** of `s` maps each entry state
//! to the ⊆-minimal antichain of achievable *exit-state sets* (as bitset
//! masks); resolving to the empty set means outright acceptance inside `s`.
//! Whether up-moves may exit depends on which child position `s` occupies,
//! so a subtree carries a behaviour for each position (left/right), plus an
//! "accepts as a whole tree" bit. This triple is a finite congruence:
//! composing a node from its children's triples is a small least fixpoint
//! over the node's local rules. The resulting deterministic bottom-up
//! automaton, built lazily over reachable triples, recognizes exactly
//! `inst(A)`.

use crate::error::TypecheckError;
use xmltc_automata::state::StateSet;
use xmltc_automata::{Dbta, State};
use xmltc_core::machine::{Action, Move, PebbleAutomaton};
use xmltc_trees::{FxHashMap, Symbol};

/// A fixed-width (per walker) bitset of machine states — an exit set.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
struct Mask(Vec<u64>);

impl Mask {
    fn empty(words: usize) -> Mask {
        Mask(vec![0; words])
    }

    fn singleton(q: usize, words: usize) -> Mask {
        let mut m = Mask::empty(words);
        m.0[q / 64] |= 1u64 << (q % 64);
        m
    }

    fn is_empty(&self) -> bool {
        self.0.iter().all(|&w| w == 0)
    }

    fn or(&self, other: &Mask) -> Mask {
        Mask(self.0.iter().zip(&other.0).map(|(a, b)| a | b).collect())
    }

    fn is_subset(&self, other: &Mask) -> bool {
        self.0.iter().zip(&other.0).all(|(a, b)| a & !b == 0)
    }

    /// Iterates over set bit positions.
    fn bits(&self) -> impl Iterator<Item = usize> + '_ {
        self.0.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

/// A ⊆-minimal antichain of exit-set masks, kept sorted for canonical
/// hashing.
type Antichain = Vec<Mask>;

/// Inserts `m`, keeping the antichain minimal. Returns true when the
/// represented upward-closed set grew.
fn insert_min(ac: &mut Antichain, m: Mask) -> bool {
    if ac.iter().any(|x| x.is_subset(&m)) {
        return false; // a subset of m is already present
    }
    ac.retain(|x| !m.is_subset(x)); // drop supersets of m
    ac.push(m);
    true
}

/// All minimal unions `x ∪ y`, `x ∈ a`, `y ∈ b`.
fn cross_union(a: &Antichain, b: &Antichain) -> Antichain {
    let mut out = Antichain::new();
    for x in a {
        for y in b {
            insert_min(&mut out, x.or(y));
        }
    }
    out
}

/// Entry-state-indexed behaviour.
type Behavior = Vec<Antichain>;

fn canon(mut b: Behavior) -> Behavior {
    for ac in &mut b {
        ac.sort_unstable();
    }
    b
}

/// Which child position the subtree occupies (the root has no exits).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Chi {
    Left,
    Right,
    Root,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct Triple {
    left: Behavior,
    right: Behavior,
    accepting: bool,
}

struct Walker<'a> {
    rules: FxHashMap<(Symbol, State), Vec<&'a Action>>,
    n_states: usize,
    words: usize,
    initial: State,
}

impl<'a> Walker<'a> {
    fn new(a: &'a PebbleAutomaton) -> Result<Walker<'a>, TypecheckError> {
        if a.k() != 1 {
            return Err(TypecheckError::NeedsOnePebble { k: a.k() });
        }
        let mut rules: FxHashMap<(Symbol, State), Vec<&Action>> = FxHashMap::default();
        for (sym, q, guard, action) in a.core().rules() {
            debug_assert!(guard.0.is_empty(), "k = 1 guards are trivial");
            rules.entry((sym, q)).or_default().push(action);
        }
        let n_states = a.core().n_states() as usize;
        Ok(Walker {
            rules,
            n_states,
            words: n_states.div_ceil(64).max(1),
            initial: a.core().initial(),
        })
    }

    /// Least fixpoint of the local resolution relation at a node labeled
    /// `sym`, with the given child behaviours (`None` for a leaf) and child
    /// position `chi`.
    fn fixpoint(
        &self,
        sym: Symbol,
        chi: Chi,
        children: Option<(&Behavior, &Behavior)>,
    ) -> Behavior {
        let mut r: Behavior = vec![Antichain::new(); self.n_states];
        let mut changed = true;
        while changed {
            changed = false;
            for q in 0..self.n_states {
                let Some(actions) = self.rules.get(&(sym, State(q as u32))) else {
                    continue;
                };
                // Candidates are computed against the current `r` and then
                // merged; two-phase to appease the borrow checker.
                let mut candidates: Vec<Mask> = Vec::new();
                for action in actions {
                    match action {
                        Action::Branch0 => candidates.push(Mask::empty(self.words)),
                        Action::Branch2(q1, q2) => {
                            for m in cross_union(&r[q1.index()], &r[q2.index()]) {
                                candidates.push(m);
                            }
                        }
                        Action::Move(m, target) => match m {
                            Move::Stay => candidates.extend(r[target.index()].iter().cloned()),
                            Move::UpLeft => {
                                if chi == Chi::Left {
                                    candidates.push(Mask::singleton(target.index(), self.words));
                                }
                            }
                            Move::UpRight => {
                                if chi == Chi::Right {
                                    candidates.push(Mask::singleton(target.index(), self.words));
                                }
                            }
                            Move::DownLeft | Move::DownRight => {
                                let Some((bl, br)) = children else { continue };
                                let child = if matches!(m, Move::DownLeft) { bl } else { br };
                                for exits in &child[target.index()] {
                                    candidates.extend(self.resolve_exits(exits, &r));
                                }
                            }
                            Move::PlaceNew | Move::PickCurrent => {
                                unreachable!("unusable at k = 1")
                            }
                        },
                        Action::Output0(..) | Action::Output2(..) => {
                            unreachable!("automata have no output transitions")
                        }
                    }
                }
                for m in candidates {
                    changed |= insert_min(&mut r[q], m);
                }
            }
        }
        canon(r)
    }

    /// Exit states returned by a child must all resolve at the current
    /// node: the minimal unions over one choice of resolution per exit
    /// state.
    fn resolve_exits(&self, exits: &Mask, r: &Behavior) -> Vec<Mask> {
        let mut acc: Antichain = vec![Mask::empty(self.words)];
        for q in exits.bits() {
            if r[q].is_empty() {
                return Vec::new(); // this exit state cannot resolve (yet)
            }
            acc = cross_union(&acc, &r[q]);
        }
        acc
    }

    fn triple(&self, sym: Symbol, children: Option<(&Triple, &Triple)>) -> Triple {
        let kids = children.map(|(l, r)| (&l.left, &r.right));
        let left = self.fixpoint(sym, Chi::Left, kids);
        let right = self.fixpoint(sym, Chi::Right, kids);
        let root = self.fixpoint(sym, Chi::Root, kids);
        // Accepting iff the initial configuration resolves with no exits.
        let accepting = root[self.initial.index()].iter().any(Mask::is_empty);
        Triple {
            left,
            right,
            accepting,
        }
    }
}

/// Converts a 1-pebble (branching tree-walking) automaton into an
/// equivalent deterministic bottom-up tree automaton.
///
/// Errors when `k ≠ 1`. The `limit` bounds the number of behaviour classes
/// (congruence states) explored.
pub fn walking_to_dbta_limited(a: &PebbleAutomaton, limit: u32) -> Result<Dbta, TypecheckError> {
    let walker = Walker::new(a)?;
    let alphabet = a.input_alphabet();

    let mut index: FxHashMap<Triple, State> = FxHashMap::default();
    let mut triples: Vec<Triple> = Vec::new();
    let mut intern = |t: Triple, triples: &mut Vec<Triple>| -> Result<State, TypecheckError> {
        if let Some(&q) = index.get(&t) {
            return Ok(q);
        }
        let q = State(triples.len() as u32);
        if q.0 >= limit {
            return Err(TypecheckError::TooManyStates { n: q.0 + 1 });
        }
        index.insert(t.clone(), q);
        triples.push(t);
        Ok(q)
    };

    let mut leaf: FxHashMap<Symbol, State> = FxHashMap::default();
    let mut node: FxHashMap<(Symbol, State, State), State> = FxHashMap::default();

    for sym in alphabet.leaves() {
        let t = walker.triple(sym, None);
        leaf.insert(sym, intern(t, &mut triples)?);
    }
    let binaries = alphabet.binaries();
    let mut processed = 0usize;
    while processed < triples.len() {
        let s1 = State(processed as u32);
        processed += 1;
        let mut p2 = 0usize;
        while p2 < triples.len() {
            let s2 = State(p2 as u32);
            p2 += 1;
            for &sym in &binaries {
                for (x, y) in [(s1, s2), (s2, s1)] {
                    if node.contains_key(&(sym, x, y)) {
                        continue;
                    }
                    let t = {
                        let tx = &triples[x.index()];
                        let ty = &triples[y.index()];
                        walker.triple(sym, Some((tx, ty)))
                    };
                    let q = intern(t, &mut triples)?;
                    node.insert((sym, x, y), q);
                }
            }
        }
    }

    let finals: StateSet = triples
        .iter()
        .enumerate()
        .filter(|(_, t)| t.accepting)
        .map(|(i, _)| State(i as u32))
        .collect();
    Ok(Dbta::from_parts(
        alphabet,
        triples.len() as u32,
        leaf,
        node,
        finals,
    ))
}

/// [`walking_to_dbta_limited`] without a class budget.
pub fn walking_to_dbta(a: &PebbleAutomaton) -> Result<Dbta, TypecheckError> {
    walking_to_dbta_limited(a, u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use xmltc_core::accepts;
    use xmltc_core::machine::{AutomatonBuilder, Guard, SymSpec};
    use xmltc_trees::{Alphabet, BinaryTree};

    fn alpha() -> Arc<Alphabet> {
        Alphabet::ranked(&["x", "y"], &["f"])
    }

    const TREES: [&str; 10] = [
        "x",
        "y",
        "f(x, y)",
        "f(y, x)",
        "f(x, x)",
        "f(x, f(x, x))",
        "f(f(y, x), x)",
        "f(f(x, x), f(x, y))",
        "f(f(x, y), f(y, x))",
        "f(f(f(x, x), x), y)",
    ];

    fn agree(a: &PebbleAutomaton) {
        let al = a.input_alphabet().clone();
        let d = walking_to_dbta(a).unwrap();
        for src in TREES {
            let t = BinaryTree::parse(src, &al).unwrap();
            assert_eq!(
                d.accepts(&t).unwrap(),
                accepts(a, &t).unwrap(),
                "disagreement on {src}"
            );
        }
    }

    /// Walks down-left-only to check the leftmost leaf is x.
    #[test]
    fn leftmost_leaf_x() {
        let al = alpha();
        let x = al.get("x").unwrap();
        let mut b = AutomatonBuilder::new(&al, 1);
        let q = b.state("walk", 1).unwrap();
        b.set_initial(q);
        b.move_rule(SymSpec::Binaries, q, Guard::any(), Move::DownLeft, q)
            .unwrap();
        b.branch0(SymSpec::One(x), q, Guard::any()).unwrap();
        agree(&b.build().unwrap());
    }

    /// Or-search: some y leaf exists.
    #[test]
    fn some_y() {
        let al = alpha();
        let y = al.get("y").unwrap();
        let mut b = AutomatonBuilder::new(&al, 1);
        let q = b.state("search", 1).unwrap();
        b.set_initial(q);
        b.branch0(SymSpec::One(y), q, Guard::any()).unwrap();
        b.move_rule(SymSpec::Binaries, q, Guard::any(), Move::DownLeft, q)
            .unwrap();
        b.move_rule(SymSpec::Binaries, q, Guard::any(), Move::DownRight, q)
            .unwrap();
        agree(&b.build().unwrap());
    }

    /// And-branching: all leaves x.
    #[test]
    fn all_x() {
        let al = alpha();
        let x = al.get("x").unwrap();
        let mut b = AutomatonBuilder::new(&al, 1);
        let q = b.state("check", 1).unwrap();
        let l = b.state("left", 1).unwrap();
        let r = b.state("right", 1).unwrap();
        b.set_initial(q);
        b.branch0(SymSpec::One(x), q, Guard::any()).unwrap();
        b.branch2(SymSpec::Binaries, q, Guard::any(), l, r).unwrap();
        b.move_rule(SymSpec::Binaries, l, Guard::any(), Move::DownLeft, q)
            .unwrap();
        b.move_rule(SymSpec::Binaries, r, Guard::any(), Move::DownRight, q)
            .unwrap();
        agree(&b.build().unwrap());
    }

    /// A genuinely two-way machine: walk to the leftmost leaf; if it is y,
    /// walk all the way back up and then check the rightmost leaf is also
    /// y. Exercises up-moves and exit composition.
    #[test]
    fn two_way_walk() {
        let al = alpha();
        let y = al.get("y").unwrap();
        let mut b = AutomatonBuilder::new(&al, 1);
        let down = b.state("down", 1).unwrap();
        let up = b.state("up", 1).unwrap();
        let right = b.state("right", 1).unwrap();
        b.set_initial(down);
        b.move_rule(SymSpec::Binaries, down, Guard::any(), Move::DownLeft, down)
            .unwrap();
        // On a y leftmost leaf: climb.
        b.move_rule(SymSpec::One(y), down, Guard::any(), Move::UpLeft, up)
            .unwrap();
        b.move_rule(SymSpec::One(y), down, Guard::any(), Move::UpRight, up)
            .unwrap();
        b.move_rule(SymSpec::Any, up, Guard::any(), Move::UpLeft, up)
            .unwrap();
        b.move_rule(SymSpec::Any, up, Guard::any(), Move::UpRight, up)
            .unwrap();
        // From wherever climbing stops... we can't test rootness, so `up`
        // also nondeterministically switches to descending right.
        b.move_rule(SymSpec::Binaries, up, Guard::any(), Move::Stay, right)
            .unwrap();
        b.move_rule(
            SymSpec::Binaries,
            right,
            Guard::any(),
            Move::DownRight,
            right,
        )
        .unwrap();
        b.branch0(SymSpec::One(y), right, Guard::any()).unwrap();
        // Degenerate single-leaf tree: y alone accepts via the right state?
        // No — initial `down` on a leaf y has no applicable rule except the
        // up-moves, which fail at the root: single y is rejected. That is
        // the machine's semantics; the theorem only asks for agreement.
        agree(&b.build().unwrap());
    }

    /// Stay-cycles must not diverge or accept spuriously.
    #[test]
    fn stay_cycle() {
        let al = alpha();
        let mut b = AutomatonBuilder::new(&al, 1);
        let q = b.state("a", 1).unwrap();
        let p = b.state("b", 1).unwrap();
        b.set_initial(q);
        b.move_rule(SymSpec::Any, q, Guard::any(), Move::Stay, p)
            .unwrap();
        b.move_rule(SymSpec::Any, p, Guard::any(), Move::Stay, q)
            .unwrap();
        agree(&b.build().unwrap());
    }

    /// k = 2 machines are rejected by this route.
    #[test]
    fn requires_one_pebble() {
        let al = alpha();
        let mut b = AutomatonBuilder::new(&al, 2);
        let q = b.state("q", 1).unwrap();
        let q2 = b.state("q2", 2).unwrap();
        b.set_initial(q);
        b.move_rule(SymSpec::Any, q, Guard::any(), Move::PlaceNew, q2)
            .unwrap();
        b.branch0(SymSpec::Any, q2, Guard::any()).unwrap();
        let a = b.build().unwrap();
        assert!(matches!(
            walking_to_dbta(&a),
            Err(TypecheckError::NeedsOnePebble { k: 2 })
        ));
    }
}
