//! The forward type-inference **baseline** (Related Work: XDuce, XQuery).
//!
//! Practical XML typecheckers infer an output type and test containment in
//! `τ₂`. The paper's Example 4.2/4.3 point is that the exact image need not
//! be regular, so any inferred regular type over-approximates and the
//! method *rejects correct programs*. This module implements that baseline
//! for downward 1-pebble transducers (classical top-down transducers — the
//! XSLT fragment, copy/relabel, template expansion):
//!
//! * abstract configurations `(q, a, p)` pair a transducer state with a
//!   current-input-node symbol and an input-type state;
//! * down moves re-instantiate the child subtree independently per branch —
//!   precisely the decoupling that makes the image regular but
//!   over-approximated (sibling output branches forget they share one
//!   input subtree).
//!
//! Soundness: `image(T, τ₁) ⊇ T(τ₁)`, so `image ⊆ τ₂` implies `T`
//! typechecks. Incompleteness is demonstrated by experiment E6
//! (Example 4.3's query Q2).

use crate::error::TypecheckError;
use xmltc_automata::{Nta, State, TdTa};
use xmltc_core::machine::{Action, Move, PebbleTransducer};
use xmltc_trees::{BinaryTree, FxHashMap, Rank, Symbol};

/// Outcome of the forward baseline.
#[derive(Clone, Debug)]
pub enum ForwardOutcome {
    /// The inferred output type is contained in `τ₂`: the program
    /// typechecks (sound).
    Proved,
    /// The inferred (over-approximate) type leaks outside `τ₂`: the
    /// baseline rejects the program. The witness is a tree in
    /// `image ∖ τ₂` — possibly *spurious* (not an actual output).
    Rejected {
        /// A tree accepted by the inferred type but not by `τ₂`.
        witness: Option<BinaryTree>,
    },
}

impl ForwardOutcome {
    /// True when the baseline proved the program.
    pub fn is_proved(&self) -> bool {
        matches!(self, ForwardOutcome::Proved)
    }
}

/// Computes a regular over-approximation of `T(τ₁)` for a downward
/// 1-pebble transducer as a top-down automaton with silent transitions.
pub fn forward_image(t: &PebbleTransducer, input_type: &Nta) -> Result<TdTa, TypecheckError> {
    if t.k() != 1 {
        return Err(TypecheckError::UnsupportedForForward(format!(
            "k = {} (needs k = 1)",
            t.k()
        )));
    }
    let core = t.core();
    // Index rules and reject non-downward moves.
    let mut rules: FxHashMap<(Symbol, State), Vec<&Action>> = FxHashMap::default();
    for (sym, q, _guard, action) in core.rules() {
        if let Action::Move(m, _) = action {
            if !matches!(m, Move::Stay | Move::DownLeft | Move::DownRight) {
                return Err(TypecheckError::UnsupportedForForward(format!(
                    "move {m:?} (only stay/down moves allowed)"
                )));
            }
        }
        rules.entry((sym, q)).or_default().push(action);
    }

    let td_type = input_type.to_tdta().eliminate_silent();
    let input_al = t.input_alphabet();

    // viable[(b, p)] = some input subtree rooted at symbol b is accepted
    // from type state p.
    let mut viable: FxHashMap<(Symbol, State), bool> = FxHashMap::default();
    for b in input_al.symbols() {
        for p in (0..td_type.n_states()).map(State) {
            let v = match input_al.rank(b) {
                Rank::Leaf => td_type.is_final_pair(b, p),
                _ => false,
            };
            viable.insert((b, p), v);
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for b in input_al.binaries() {
            for p in (0..td_type.n_states()).map(State) {
                if viable[&(b, p)] {
                    continue;
                }
                let ok = td_type.transitions_for(b, p).iter().any(|&(p1, p2)| {
                    input_al.symbols().any(|b1| viable[&(b1, p1)])
                        && input_al.symbols().any(|b2| viable[&(b2, p2)])
                });
                if ok {
                    viable.insert((b, p), true);
                    changed = true;
                }
            }
        }
    }

    // Abstract configurations (q, a, p), interned as automaton states.
    type Abs = (State, Symbol, State);
    let mut index: FxHashMap<Abs, State> = FxHashMap::default();
    let mut automaton = TdTa::new(t.output_alphabet(), 1, State(0)); // state 0 = fresh initial
    let mut queue: Vec<Abs> = Vec::new();
    fn intern(
        abs: (State, Symbol, State),
        index: &mut FxHashMap<(State, Symbol, State), State>,
        automaton: &mut TdTa,
        queue: &mut Vec<(State, Symbol, State)>,
    ) -> State {
        if let Some(&s) = index.get(&abs) {
            return s;
        }
        let s = automaton.add_state();
        index.insert(abs, s);
        queue.push(abs);
        s
    }

    // Initial: the input root may be any viable symbol at the type's
    // initial state.
    for b in input_al.symbols() {
        if viable[&(b, td_type.initial())] {
            let s = intern(
                (core.initial(), b, td_type.initial()),
                &mut index,
                &mut automaton,
                &mut queue,
            );
            automaton.add_silent_any(State(0), s);
        }
    }

    while let Some(abs @ (q, a, p)) = queue.pop() {
        let s = index[&abs];
        let Some(actions) = rules.get(&(a, q)) else {
            continue;
        };
        for action in actions {
            match action {
                Action::Move(Move::Stay, q2) => {
                    let s2 = intern((*q2, a, p), &mut index, &mut automaton, &mut queue);
                    automaton.add_silent_any(s, s2);
                }
                Action::Move(m @ (Move::DownLeft | Move::DownRight), q2) => {
                    if input_al.rank(a) != Rank::Binary {
                        continue;
                    }
                    for &(p1, p2) in td_type.transitions_for(a, p) {
                        let pc = if matches!(m, Move::DownLeft) { p1 } else { p2 };
                        for b in input_al.symbols() {
                            if viable[&(b, pc)] {
                                let s2 =
                                    intern((*q2, b, pc), &mut index, &mut automaton, &mut queue);
                                automaton.add_silent_any(s, s2);
                            }
                        }
                    }
                }
                Action::Move(..) => unreachable!("validated above"),
                Action::Output0(o) => automaton.add_final_pair(*o, s),
                Action::Output2(o, q1, q2) => {
                    let s1 = intern((*q1, a, p), &mut index, &mut automaton, &mut queue);
                    let s2 = intern((*q2, a, p), &mut index, &mut automaton, &mut queue);
                    automaton.add_transition(*o, s, s1, s2);
                }
                Action::Branch0 | Action::Branch2(..) => {
                    unreachable!("transducers have no branch transitions")
                }
            }
        }
    }
    Ok(automaton)
}

/// Typechecks by forward inference: infer the over-approximate image and
/// test containment in `τ₂`. Sound; incomplete.
pub fn forward_typecheck(
    t: &PebbleTransducer,
    input_type: &Nta,
    output_type: &Nta,
) -> Result<ForwardOutcome, TypecheckError> {
    let image = forward_image(t, input_type)?.to_nta().trim();
    match image.inclusion_counterexample(output_type) {
        None => Ok(ForwardOutcome::Proved),
        Some(witness) => Ok(ForwardOutcome::Rejected {
            witness: Some(witness),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use xmltc_core::library;
    use xmltc_trees::Alphabet;

    fn alpha() -> Arc<Alphabet> {
        Alphabet::ranked(&["x", "y"], &["f"])
    }

    fn all_x(al: &Arc<Alphabet>) -> Nta {
        let x = al.get("x").unwrap();
        let mut a = Nta::new(al, 1);
        a.add_leaf(x, State(0));
        for b in al.binaries() {
            a.add_node(b, State(0), State(0), State(0));
        }
        a.add_final(State(0));
        a
    }

    fn top(al: &Arc<Alphabet>) -> Nta {
        let mut a = Nta::new(al, 1);
        for l in al.leaves() {
            a.add_leaf(l, State(0));
        }
        for b in al.binaries() {
            a.add_node(b, State(0), State(0), State(0));
        }
        a.add_final(State(0));
        a
    }

    #[test]
    fn copy_image_is_input_type() {
        // For copy, the forward image is exact: it equals τ₁.
        let al = alpha();
        let t = library::copy(&al).unwrap();
        let tau1 = all_x(&al);
        let image = forward_image(&t, &tau1).unwrap().to_nta().trim();
        assert!(image.equivalent(&tau1));
    }

    #[test]
    fn forward_proves_copy() {
        let al = alpha();
        let t = library::copy(&al).unwrap();
        let tau = all_x(&al);
        assert!(forward_typecheck(&t, &tau, &tau).unwrap().is_proved());
        // And correctly rejects an impossible spec.
        match forward_typecheck(&t, &top(&al), &tau).unwrap() {
            ForwardOutcome::Rejected { witness } => {
                let w = witness.unwrap();
                assert!(!tau.accepts(&w).unwrap());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_upward_machines() {
        // rotation uses up moves: unsupported.
        let al = Alphabet::ranked(&["s", "x"], &["r", "s2"]);
        let s0 = al.get("s").unwrap();
        let s2 = al.get("s2").unwrap();
        let r = al.get("r").unwrap();
        let (t, _) = library::rotation(&al, s0, s2, r).unwrap();
        assert!(matches!(
            forward_image(&t, &top(&al)),
            Err(TypecheckError::UnsupportedForForward(_))
        ));
    }

    /// The decoupling over-approximation in action: a transducer that
    /// outputs f(copy-of-left-child, copy-of-left-child) twice. The true
    /// image over τ₁ = all trees has both output children equal; the
    /// forward image decouples them. The exact typechecker (vs a spec
    /// demanding equality — not regular — so we use a weaker probe) is
    /// compared in the E6 experiment; here we just check soundness: every
    /// actual output is in the image.
    #[test]
    fn image_overapproximates() {
        let al = alpha();
        let t = library::copy(&al).unwrap();
        let tau1 = top(&al);
        let image = forward_image(&t, &tau1).unwrap().to_nta();
        for src in ["x", "y", "f(x, y)", "f(f(x, x), y)"] {
            let tree = BinaryTree::parse(src, &al).unwrap();
            let out = xmltc_core::eval(&t, &tree).unwrap();
            assert!(image.accepts(&out).unwrap(), "{src}");
        }
    }
}

#[cfg(test)]
mod topdown_tests {
    use super::*;

    use xmltc_automata::State;
    use xmltc_core::topdown_transducer::{Fragment, TopDownTransducer};
    use xmltc_trees::Alphabet;

    /// Embedded Definition 3.2 transducers are downward 1-pebble machines,
    /// so the machine-level forward baseline applies to them directly.
    #[test]
    fn forward_inference_on_embedded_topdown_transducer() {
        let al = Alphabet::ranked(&["x", "y"], &["f", "g"]);
        let f = al.get("f").unwrap();
        let g = al.get("g").unwrap();
        let x = al.get("x").unwrap();
        let y = al.get("y").unwrap();
        let q = State(0);
        // Relabel everything: f,g ↦ g; x,y ↦ y.
        let mut td = TopDownTransducer::new(&al, &al, 1, q);
        for s in [f, g] {
            td.add_rule(
                s,
                q,
                Fragment::node(g, Fragment::recurse(1, q), Fragment::recurse(2, q)),
            )
            .unwrap();
        }
        for s in [x, y] {
            td.add_rule(s, q, Fragment::Leaf(y)).unwrap();
        }
        let pebble = td.to_pebble().unwrap();

        // τ₁ = all trees.
        let mut tau1 = Nta::new(&al, 1);
        for l in al.leaves() {
            tau1.add_leaf(l, State(0));
        }
        for b in al.binaries() {
            tau1.add_node(b, State(0), State(0), State(0));
        }
        tau1.add_final(State(0));

        // τ₂ = trees over {g, y} only.
        let mut tau2 = Nta::new(&al, 1);
        tau2.add_leaf(y, State(0));
        tau2.add_node(g, State(0), State(0), State(0));
        tau2.add_final(State(0));

        // The relabeling is linear, so the forward image is exact here and
        // the baseline proves the true spec.
        assert!(forward_typecheck(&pebble, &tau1, &tau2)
            .unwrap()
            .is_proved());

        // And rejects an over-tight spec (no g at all) with a witness.
        let mut tau3 = Nta::new(&al, 1);
        tau3.add_leaf(y, State(0));
        tau3.add_final(State(0));
        match forward_typecheck(&pebble, &tau1, &tau3).unwrap() {
            ForwardOutcome::Rejected { witness } => {
                assert!(witness.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
        // Cross-check with the exact route.
        let exact =
            crate::typecheck(&pebble, &tau1, &tau2, &crate::TypecheckOptions::default()).unwrap();
        assert!(exact.is_ok());
    }
}
