//! Inverse type inference: the type `τ₂⁻¹ = {t | T(t) ⊆ τ₂}`.
//!
//! This is the problem the paper solves in place of (impossible) forward
//! type inference: the preimage-style type is always regular and
//! effectively computable. Example 4.2's punchline — the inverse of the
//! even-`b` output DTD `(b.b)*` under query Q1 (`aⁿ ↦ bⁿ²`) is exactly the
//! even-`a` input DTD `(a.a)*` — is an integration test of this module.

use crate::check::{ResolvedRoute, TypecheckOptions};
use crate::error::TypecheckError;
use crate::mso_route;
use crate::product::violation_automaton;
use crate::walk;
use xmltc_automata::Nta;
use xmltc_core::PebbleTransducer;
use xmltc_obs as obs;

/// Computes a tree automaton for `τ₂⁻¹ = {t | T(t) ⊆ τ₂}`.
///
/// Pipeline: Proposition 4.6 gives a k-pebble automaton for the complement
/// `{t | T(t) ⊈ τ₂}`; Theorem 4.7 converts it to a regular tree automaton;
/// complementing yields the inverse type.
pub fn inverse_type(
    t: &PebbleTransducer,
    output_type: &Nta,
    opts: &TypecheckOptions,
) -> Result<Nta, TypecheckError> {
    let violations = violation_nta(t, output_type, opts)?;
    let _span = obs::span("typecheck.inverse_complement");
    let inv = violations.complement().to_nta().trim();
    obs::record("inverse.states", inv.n_states() as u64);
    obs::record("inverse.transitions", inv.n_transitions() as u64);
    Ok(inv)
}

/// The regular tree automaton for `{t | T(t) ⊈ τ₂}` (the violation
/// language), by whichever Theorem 4.7 route the options select.
pub fn violation_nta(
    t: &PebbleTransducer,
    output_type: &Nta,
    opts: &TypecheckOptions,
) -> Result<Nta, TypecheckError> {
    let v = {
        let _span = obs::span("typecheck.violation");
        let v = violation_automaton(t, output_type)?.trim_states();
        obs::record("pebble.k", v.k() as u64);
        obs::record("pebble.states", v.core().n_states() as u64);
        v
    };
    let nta = match opts.route_for(t.k()) {
        ResolvedRoute::Walk => {
            let _span = obs::span("route.walk");
            let wopts = walk::WalkOptions {
                limit: opts.state_limit,
                threads: opts.threads,
                parallel_threshold: opts.parallel_threshold,
                chunk: opts.chunk,
            };
            let (d, ws) = walk::walking_to_dbta_with(&v, &wopts)?;
            obs::record("walk.dbta_states", d.n_states() as u64);
            obs::record("walk.pairs", ws.pairs);
            obs::record("walk.compositions", ws.compositions);
            obs::record("walk.memo_hits", ws.memo_hits);
            obs::record("walk.memo_misses", ws.memo_misses);
            obs::record("walk.fixpoint_steps", ws.fixpoint_steps);
            obs::record("walk.worklist_peak", ws.worklist_peak);
            obs::record("walk.rounds", ws.rounds);
            obs::record("walk.threads", ws.threads);
            obs::record("walk.parallel_batches", ws.parallel_batches);
            obs::record("walk.parallel_threshold", ws.parallel_threshold);
            obs::record("walk.masks_interned", ws.masks_interned);
            obs::record("walk.behaviors_interned", ws.behaviors_interned);
            obs::record("walk.kernel.words", ws.words);
            obs::record("walk.kernel.rows", ws.kernel_rows);
            obs::record("walk.kernel.row_peak", ws.kernel_row_peak);
            obs::record("walk.kernel.projections", ws.projections_interned);
            obs::record("walk.kernel.chunk_size", ws.chunk_size);
            obs::record("walk.kernel.chunks", ws.chunks);
            d.to_nta().trim()
        }
        ResolvedRoute::Mso => {
            let _span = obs::span("route.mso");
            let (nta, stats) = mso_route::pebble_to_nta(&v, opts.state_limit)?;
            obs::record("mso.max_states", stats.max_states as u64);
            obs::record("mso.determinizations", stats.determinizations as u64);
            obs::record("mso.operations", stats.operations as u64);
            nta.trim()
        }
    };
    obs::record("violation.states", nta.n_states() as u64);
    obs::record("violation.transitions", nta.n_transitions() as u64);
    Ok(nta)
}
