//! **Theorem 4.7, paper-faithful route**: k-pebble automata → MSO → tree
//! automata.
//!
//! Acceptance of a k-pebble automaton is accessibility in the and/or graph
//! of configurations (AGAP). Accessibility is the least fixpoint of the
//! reverse-closure rules, definable in MSO with universally quantified set
//! variables — one `S_q` per machine state, holding the positions where the
//! configuration `(q, x̄)` is accessible, relative to the universally
//! quantified positions `x₁ … x_{i-1}` of the outer pebbles:
//!
//! ```text
//! φ⁽ⁱ⁾(v) = ∀S_q (q ∈ Q_i) . (⋀_{p ∈ P_i} ψ_p  ⇒  ∃r. root(r) ∧ r ∈ S_v)
//! ```
//!
//! with one reverse-closure conjunct `ψ_p` per transition `p`, and
//! `place`/`pick` transitions linking adjacent levels (a `place` conjunct
//! embeds the whole `φ⁽ⁱ⁺¹⁾`, making the formula — and hence the resulting
//! automaton — non-elementary in `k`, cf. Theorem 4.8).

use crate::error::TypecheckError;
use xmltc_automata::{Nta, State};
use xmltc_core::machine::{Action, Guard, Move, PebbleAutomaton, Presence};
use xmltc_mso::{compile_sentence_limited, CompileStats, Formula};

/// Variable names.
fn s_var(q: State) -> String {
    format!("S{}", q.0)
}

fn x_var(level: u8) -> String {
    format!("x{level}")
}

/// `r ∈ S_v` for the root `r`.
fn at_root(v: State, level: u8) -> Formula {
    let r = format!("r{level}");
    Formula::exists1(
        r.clone(),
        Formula::Root(r.clone()).and(Formula::In(r, s_var(v))),
    )
}

/// The pebble-presence conjunct `pebbles_b(x_i)` for a guard.
fn guard_formula(xi: &str, guard: &Guard) -> Formula {
    Formula::all(guard.0.iter().enumerate().filter_map(|(j, p)| {
        let xj = x_var((j + 1) as u8);
        match p {
            Presence::Any => None,
            Presence::Present => Some(Formula::Eq(xi.to_string(), xj)),
            Presence::Absent => Some(Formula::Eq(xi.to_string(), xj).not()),
        }
    }))
}

/// Builds `φ⁽ⁱ⁾(entry)`: pebbles `1..i` quantified by the caller (levels
/// `< i` free as `x₁ … x_{i-1}`), asserting that the configuration
/// `(entry, x̄·root)` is accessible.
fn phi_level(a: &PebbleAutomaton, level: u8, entry: State) -> Formula {
    let core = a.core();
    let xi = x_var(level);
    let yi = format!("y{level}");

    let mut conjuncts: Vec<Formula> = Vec::new();
    for (sym, q, guard, action) in core.rules() {
        if core.level(q) != level {
            continue;
        }
        let base = Formula::Label(xi.clone(), sym).and(guard_formula(&xi, guard));
        let head = |body: Formula| {
            Formula::forall1(xi.clone(), base.clone().and(body).implies(in_s(&xi, q)))
        };
        let psi = match action {
            Action::Branch0 => head(Formula::True),
            Action::Branch2(v, w) => head(in_s(&xi, *v).and(in_s(&xi, *w))),
            Action::Move(Move::Stay, v) => head(in_s(&xi, *v)),
            Action::Move(Move::DownLeft, v) => Formula::forall1(
                xi.clone(),
                Formula::forall1(
                    yi.clone(),
                    base.clone()
                        .and(Formula::Succ1(xi.clone(), yi.clone()))
                        .and(in_s(&yi, *v))
                        .implies(in_s(&xi, q)),
                ),
            ),
            Action::Move(Move::DownRight, v) => Formula::forall1(
                xi.clone(),
                Formula::forall1(
                    yi.clone(),
                    base.clone()
                        .and(Formula::Succ2(xi.clone(), yi.clone()))
                        .and(in_s(&yi, *v))
                        .implies(in_s(&xi, q)),
                ),
            ),
            Action::Move(Move::UpLeft, v) => Formula::forall1(
                xi.clone(),
                Formula::forall1(
                    yi.clone(),
                    base.clone()
                        .and(Formula::Succ1(yi.clone(), xi.clone()))
                        .and(in_s(&yi, *v))
                        .implies(in_s(&xi, q)),
                ),
            ),
            Action::Move(Move::UpRight, v) => Formula::forall1(
                xi.clone(),
                Formula::forall1(
                    yi.clone(),
                    base.clone()
                        .and(Formula::Succ2(yi.clone(), xi.clone()))
                        .and(in_s(&yi, *v))
                        .implies(in_s(&xi, q)),
                ),
            ),
            Action::Move(Move::PlaceNew, v) => {
                // (base ∧ φ⁽ⁱ⁺¹⁾(v)) ⇒ S_q(x_i); pebble i's position x_i is
                // free inside φ⁽ⁱ⁺¹⁾ (referenced by level-(i+1) guards and
                // pick conjuncts).
                head(phi_level(a, level + 1, *v))
            }
            Action::Move(Move::PickCurrent, v) => {
                // Control returns to pebble i-1 at its own position.
                head(Formula::In(x_var(level - 1), s_var(*v)))
            }
            Action::Output0(..) | Action::Output2(..) => {
                unreachable!("automata have no output transitions")
            }
        };
        conjuncts.push(psi);
    }

    let reverse_closed = Formula::all(conjuncts);
    let mut phi = reverse_closed.implies(at_root(entry, level));
    for q in (0..core.n_states()).map(State) {
        if core.level(q) == level {
            phi = Formula::forall2(s_var(q), phi);
        }
    }
    phi
}

fn in_s(x: &str, q: State) -> Formula {
    Formula::In(x.to_string(), s_var(q))
}

/// The MSO sentence `φ_A` with `t ⊨ φ_A ⟺ A accepts t`.
pub fn pebble_to_formula(a: &PebbleAutomaton) -> Formula {
    phi_level(a, 1, a.core().initial())
}

/// Theorem 4.7 by the MSO route: an ordinary tree automaton equivalent to
/// the k-pebble automaton. `state_limit` bounds every intermediate
/// automaton of the MSO compilation.
pub fn pebble_to_nta(
    a: &PebbleAutomaton,
    state_limit: u32,
) -> Result<(Nta, CompileStats), TypecheckError> {
    let f = pebble_to_formula(a);
    let (nta, stats) = compile_sentence_limited(&f, a.input_alphabet(), state_limit)?;
    Ok((nta, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use xmltc_core::accepts;
    use xmltc_core::machine::{AutomatonBuilder, SymSpec};
    use xmltc_trees::{Alphabet, BinaryTree};

    fn alpha() -> Arc<Alphabet> {
        Alphabet::ranked(&["x", "y"], &["f"])
    }

    fn agree(a: &PebbleAutomaton, trees: &[&str], limit: u32) {
        let al = a.input_alphabet().clone();
        let (nta, stats) = pebble_to_nta(a, limit).expect("MSO route compiles");
        assert!(stats.operations > 0);
        for src in trees {
            let t = BinaryTree::parse(src, &al).unwrap();
            assert_eq!(
                nta.accepts(&t).unwrap(),
                accepts(a, &t).unwrap(),
                "MSO route disagrees on {src}"
            );
        }
    }

    #[test]
    fn one_pebble_search() {
        let al = alpha();
        let y = al.get("y").unwrap();
        let mut b = AutomatonBuilder::new(&al, 1);
        let q = b.state("search", 1).unwrap();
        b.set_initial(q);
        b.branch0(SymSpec::One(y), q, xmltc_core::machine::Guard::any())
            .unwrap();
        b.move_rule(
            SymSpec::Binaries,
            q,
            xmltc_core::machine::Guard::any(),
            Move::DownLeft,
            q,
        )
        .unwrap();
        b.move_rule(
            SymSpec::Binaries,
            q,
            xmltc_core::machine::Guard::any(),
            Move::DownRight,
            q,
        )
        .unwrap();
        let a = b.build().unwrap();
        agree(
            &a,
            &[
                "x",
                "y",
                "f(x, y)",
                "f(x, x)",
                "f(f(x, y), x)",
                "f(f(x, x), x)",
            ],
            2_000_000,
        );
    }

    #[test]
    fn formula_shape() {
        let al = alpha();
        let y = al.get("y").unwrap();
        let mut b = AutomatonBuilder::new(&al, 1);
        let q = b.state("q", 1).unwrap();
        b.set_initial(q);
        b.branch0(SymSpec::One(y), q, xmltc_core::machine::Guard::any())
            .unwrap();
        let a = b.build().unwrap();
        let f = pebble_to_formula(&a);
        // One ∀S per state, plus inner FO quantifiers.
        assert!(f.quantifier_depth() >= 2);
        let printed = f.to_string();
        assert!(printed.contains("S0"));
        assert!(printed.contains("root"));
    }

    #[test]
    fn two_pebble_machine() {
        // Pebble 1 stays on the root; pebble 2 checks the root is f and
        // then accepts where pebble 1 is present (trivial use of place +
        // guard + pick).
        let al = alpha();
        let mut b = AutomatonBuilder::new(&al, 2);
        let q1 = b.state("q1", 1).unwrap();
        let done = b.state("done", 1).unwrap();
        let q2 = b.state("q2", 2).unwrap();
        let back = b.state("back", 2).unwrap();
        b.set_initial(q1);
        use xmltc_core::machine::Guard;
        b.move_rule(SymSpec::Binaries, q1, Guard::any(), Move::PlaceNew, q2)
            .unwrap();
        // Pebble 2 starts on the root where pebble 1 sits: require presence,
        // then pick and accept.
        b.move_rule(
            SymSpec::Binaries,
            q2,
            Guard::present(1),
            Move::PickCurrent,
            done,
        )
        .unwrap();
        b.branch0(SymSpec::Binaries, done, Guard::any()).unwrap();
        // Unused state to exercise level-2 quantification breadth.
        let _ = back;
        let a = b.build().unwrap();
        // Accepts exactly trees with a binary root.
        agree(&a, &["x", "y", "f(x, y)", "f(f(x, x), y)"], 2_000_000);
    }
}
