//! **Proposition 4.6** — the transducer × output-automaton product.
//!
//! For a k-pebble transducer `T` and a top-down automaton `B`, the product
//! `A = T × B` is a k-pebble automaton accepting `{t | T(t) ∩ inst(B) ≠ ∅}`:
//! `A` simulates `T` while running `B` over the output `T` produces, which
//! is possible because `B` consumes the output top-down in exactly the
//! order `T` emits it. With `B` an automaton for the *complement* of the
//! output type `τ₂`, `A` accepts precisely the inputs on which `T` can
//! violate `τ₂`.

use crate::error::TypecheckError;
use xmltc_automata::{Nta, State, TdTa};
use xmltc_core::machine::{Action, AutomatonBuilder, PebbleAutomaton, SymSpec};
use xmltc_core::PebbleTransducer;
use xmltc_obs as obs;
use xmltc_trees::Alphabet;

/// The Proposition 4.6 product `T × B` for an arbitrary top-down automaton
/// `B` over `T`'s output alphabet: accepts `{t | T(t) ∩ inst(B) ≠ ∅}`.
///
/// Only pair states `(qT, qB)` reachable from the initial pair through the
/// rule graph are materialized (the same over-approximation
/// `PebbleAutomaton::trim_states` uses, so the numbering of the surviving
/// states is unchanged); the rest — typically most of the `|T| · |B|`
/// grid — are never named and never receive rules. The pruned count is
/// recorded as `product.pairs_pruned`.
pub fn product_with_tdta(
    t: &PebbleTransducer,
    b: &TdTa,
) -> Result<PebbleAutomaton, TypecheckError> {
    if !Alphabet::same(t.output_alphabet(), b.alphabet()) {
        return Err(TypecheckError::Tree(
            xmltc_trees::TreeError::AlphabetMismatch,
        ));
    }
    let b = b.eliminate_silent();
    let core = t.core();
    let n_b = b.n_states();
    let n_t = core.n_states();

    // Rule-graph reachability over pairs, from the initial pair: a Move
    // rule keeps qB, an Output2 rule advances qB through B's transitions.
    // Symbols and guards are ignored — the same over-approximation as
    // `trim_states`, so pre-pruning here changes nothing downstream.
    let mut by_state: Vec<Vec<&Action>> = vec![Vec::new(); n_t as usize];
    for (_a, qt, _guard, action) in core.rules() {
        by_state[qt.index()].push(action);
    }
    let pair_idx = |qt: State, qb: State| (qt.0 * n_b + qb.0) as usize;
    let total = (n_t * n_b) as usize;
    let mut reach = vec![false; total];
    let initial = (core.initial(), b.initial());
    reach[pair_idx(initial.0, initial.1)] = true;
    let mut stack = vec![initial];
    while let Some((qt, qb)) = stack.pop() {
        let mut visit = |qt: State, qb: State, stack: &mut Vec<(State, State)>| {
            let i = pair_idx(qt, qb);
            if !reach[i] {
                reach[i] = true;
                stack.push((qt, qb));
            }
        };
        for action in &by_state[qt.index()] {
            match action {
                Action::Move(_, target) => visit(*target, qb, &mut stack),
                Action::Output0(_) => {}
                Action::Output2(out, q1, q2) => {
                    for &(b1, b2) in b.transitions_for(*out, qb) {
                        visit(*q1, b1, &mut stack);
                        visit(*q2, b2, &mut stack);
                    }
                }
                Action::Branch0 | Action::Branch2(..) => {
                    unreachable!("transducers have no branch transitions")
                }
            }
        }
    }
    let reachable = reach.iter().filter(|&&r| r).count();
    obs::record("product.pairs_total", total as u64);
    obs::record("product.pairs_pruned", (total - reachable) as u64);

    let mut builder = AutomatonBuilder::new(t.input_alphabet(), t.k());
    // Reachable state (qT, qB), in (qT, qB)-lexicographic order — the same
    // relative order the full grid (and its later trim) would produce.
    // Level inherited from qT.
    let mut pair_states: Vec<Option<State>> = vec![None; total];
    for qt in 0..n_t {
        for qb in 0..n_b {
            if !reach[pair_idx(State(qt), State(qb))] {
                continue;
            }
            let name = format!("{}·b{}", core.state_name(State(qt)), qb);
            let s = builder.state(&name, core.level(State(qt)))?;
            pair_states[pair_idx(State(qt), State(qb))] = Some(s);
        }
    }
    let pair = |qt: State, qb: State| {
        pair_states[(qt.0 * n_b + qb.0) as usize].expect("rule target is reachable")
    };

    for (a, qt, guard, action) in core.rules() {
        for qb in (0..n_b).map(State) {
            if !reach[pair_idx(qt, qb)] {
                continue;
            }
            match action {
                Action::Move(m, target) => {
                    builder.move_rule(
                        SymSpec::One(a),
                        pair(qt, qb),
                        guard.clone(),
                        *m,
                        pair(*target, qb),
                    )?;
                }
                Action::Output0(out) => {
                    if b.is_final_pair(*out, qb) {
                        builder.branch0(SymSpec::One(a), pair(qt, qb), guard.clone())?;
                    }
                }
                Action::Output2(out, q1, q2) => {
                    for &(b1, b2) in b.transitions_for(*out, qb) {
                        builder.branch2(
                            SymSpec::One(a),
                            pair(qt, qb),
                            guard.clone(),
                            pair(*q1, b1),
                            pair(*q2, b2),
                        )?;
                    }
                }
                Action::Branch0 | Action::Branch2(..) => {
                    unreachable!("transducers have no branch transitions")
                }
            }
        }
    }
    builder.set_initial(pair(core.initial(), b.initial()));
    Ok(builder.build()?)
}

/// The **violation automaton**: a k-pebble automaton accepting
/// `{t | T(t) ⊄ τ₂} = {t | T(t) ∩ complement(τ₂) ≠ ∅}`.
///
/// `T` typechecks w.r.t. `(τ₁, τ₂)` iff `τ₁ ∩ inst(result) = ∅`.
pub fn violation_automaton(
    t: &PebbleTransducer,
    output_type: &Nta,
) -> Result<PebbleAutomaton, TypecheckError> {
    if !Alphabet::same(t.output_alphabet(), output_type.alphabet()) {
        return Err(TypecheckError::Tree(
            xmltc_trees::TreeError::AlphabetMismatch,
        ));
    }
    let complement = output_type.complement().to_nta().trim();
    let b = complement.to_tdta();
    product_with_tdta(t, &b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use xmltc_core::{accepts, library};
    use xmltc_trees::BinaryTree;

    fn alpha() -> Arc<Alphabet> {
        Alphabet::ranked(&["x", "y"], &["f"])
    }

    /// NTA: all leaves are x.
    fn all_x(al: &Arc<Alphabet>) -> Nta {
        let x = al.get("x").unwrap();
        let f = al.get("f").unwrap();
        let mut a = Nta::new(al, 1);
        a.add_leaf(x, State(0));
        a.add_node(f, State(0), State(0), State(0));
        a.add_final(State(0));
        a
    }

    #[test]
    fn copy_violation_is_membership_in_complement() {
        // T = copy. T(t) = {t}. Violation(t) ⟺ t ∉ τ₂.
        let al = alpha();
        let t = library::copy(&al).unwrap();
        let tau2 = all_x(&al);
        let v = violation_automaton(&t, &tau2).unwrap();
        for (src, in_tau2) in [
            ("x", true),
            ("y", false),
            ("f(x, x)", true),
            ("f(x, y)", false),
            ("f(f(x, x), x)", true),
            ("f(f(x, y), x)", false),
        ] {
            let tree = BinaryTree::parse(src, &al).unwrap();
            assert_eq!(
                accepts(&v, &tree).unwrap(),
                !in_tau2,
                "violation automaton wrong on {src}"
            );
        }
    }

    #[test]
    fn product_with_type_itself_detects_intersection() {
        // A = T × B with B = τ (not complemented): accepts t iff T(t) ∩ τ ≠ ∅,
        // i.e. (copy) iff t ∈ τ.
        let al = alpha();
        let t = library::copy(&al).unwrap();
        let b = all_x(&al).to_tdta();
        let a = product_with_tdta(&t, &b).unwrap();
        for (src, in_tau) in [
            ("x", true),
            ("y", false),
            ("f(x, y)", false),
            ("f(x, x)", true),
        ] {
            let tree = BinaryTree::parse(src, &al).unwrap();
            assert_eq!(accepts(&a, &tree).unwrap(), in_tau, "{src}");
        }
    }

    #[test]
    fn duplicator_violation() {
        // Duplicator output always has z at the root, so with τ₂ = "all
        // trees whose leaves are x" over the extended alphabet, the
        // violation is exactly "input contains a y leaf".
        let al = alpha();
        let (t, out_al) = library::duplicator(&al).unwrap();
        let x = out_al.get("x").unwrap();
        let mut tau2 = Nta::new(&out_al, 1);
        tau2.add_leaf(x, State(0));
        for b in out_al.binaries() {
            tau2.add_node(b, State(0), State(0), State(0));
        }
        tau2.add_final(State(0));
        let v = violation_automaton(&t, &tau2).unwrap();
        for (src, has_y) in [
            ("x", false),
            ("y", true),
            ("f(x, y)", true),
            ("f(x, x)", false),
        ] {
            let tree = BinaryTree::parse(src, &al).unwrap();
            assert_eq!(accepts(&v, &tree).unwrap(), has_y, "{src}");
        }
    }
}
