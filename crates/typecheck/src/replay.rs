//! The replay verifier: independent end-to-end re-checking of extracted
//! counterexamples.
//!
//! [`crate::typecheck`] refutes `T(τ₁) ⊆ τ₂` with a pair `(input,
//! bad_output)` produced by automata constructions (Propositions 4.6 and
//! 3.8). Those constructions are exactly what a bug in the pipeline would
//! corrupt — so the claim is re-established here *without* them, from the
//! definitions alone:
//!
//! 1. `input ∈ τ₁` — direct membership on the input automaton;
//! 2. `bad_output ∈ T(input)` — an actual run of the transducer found by
//!    [`guided_trace`] (sound for nondeterministic machines, and the run
//!    doubles as the annotated trace for `xmltc explain`);
//! 3. `bad_output ∉ τ₂` — direct membership on the output automaton, with
//!    the [`rejection_point`] locating where acceptance fails.
//!
//! [`ReplayEvidence::verified`] holds exactly when all three legs confirm.
//! The differential harness and the test suite require it of every
//! counterexample either engine produces.

use crate::error::TypecheckError;
use xmltc_automata::witness::{rejection_point, RejectionPoint};
use xmltc_automata::Nta;
use xmltc_core::trace::{guided_trace, TraceStep, DEFAULT_TRACE_LIMIT};
use xmltc_core::PebbleTransducer;
use xmltc_trees::BinaryTree;

/// The outcome of replaying one counterexample.
#[derive(Clone, Debug)]
pub struct ReplayEvidence {
    /// Leg 1: the input is accepted by `τ₁`.
    pub input_in_type: bool,
    /// Leg 2: the transducer re-derived the bad output on the input.
    pub output_produced: bool,
    /// Leg 3: the bad output is rejected by `τ₂`.
    pub output_rejected: bool,
    /// The recorded run proving leg 2 (empty when it failed).
    pub trace: Vec<TraceStep>,
    /// Where `τ₂`'s runs on the bad output die (when leg 3 holds).
    pub rejection: Option<RejectionPoint>,
}

impl ReplayEvidence {
    /// True when all three legs confirm the counterexample.
    pub fn verified(&self) -> bool {
        self.input_in_type && self.output_produced && self.output_rejected
    }
}

/// Replays `(input, bad_output)` against the real transducer and the real
/// types. Use [`ReplayEvidence::verified`] for the verdict; the individual
/// legs say which part of the claim failed.
pub fn replay_counterexample(
    t: &PebbleTransducer,
    input_type: &Nta,
    output_type: &Nta,
    input: &BinaryTree,
    bad_output: &BinaryTree,
) -> Result<ReplayEvidence, TypecheckError> {
    let input_in_type = input_type.accepts(input)?;
    let trace = guided_trace(t, input, bad_output, DEFAULT_TRACE_LIMIT)?;
    let output_rejected = !output_type.accepts(bad_output)?;
    let rejection = if output_rejected {
        rejection_point(output_type, bad_output)?
    } else {
        None
    };
    Ok(ReplayEvidence {
        input_in_type,
        output_produced: trace.is_some(),
        output_rejected,
        trace: trace.unwrap_or_default(),
        rejection,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{typecheck, TypecheckOptions, TypecheckOutcome};
    use std::sync::Arc;
    use xmltc_automata::State;
    use xmltc_core::library;
    use xmltc_trees::{Alphabet, Symbol};

    fn alpha() -> Arc<Alphabet> {
        Alphabet::ranked(&["x", "y"], &["f"])
    }

    fn all_leaves(al: &Arc<Alphabet>, leaf_sym: Symbol) -> Nta {
        let mut a = Nta::new(al, 1);
        a.add_leaf(leaf_sym, State(0));
        for b in al.binaries() {
            a.add_node(b, State(0), State(0), State(0));
        }
        a.add_final(State(0));
        a
    }

    fn top(al: &Arc<Alphabet>) -> Nta {
        let mut a = Nta::new(al, 1);
        for l in al.leaves() {
            a.add_leaf(l, State(0));
        }
        for b in al.binaries() {
            a.add_node(b, State(0), State(0), State(0));
        }
        a.add_final(State(0));
        a
    }

    #[test]
    fn real_counterexamples_verify() {
        let al = alpha();
        let t = library::copy(&al).unwrap();
        let x = al.get("x").unwrap();
        let tau1 = top(&al);
        let tau2 = all_leaves(&al, x);
        match typecheck(&t, &tau1, &tau2, &TypecheckOptions::default()).unwrap() {
            TypecheckOutcome::CounterExample { input, bad_output } => {
                let bad = bad_output.unwrap();
                let ev = replay_counterexample(&t, &tau1, &tau2, &input, &bad).unwrap();
                assert!(ev.verified(), "{ev:?}");
                assert!(!ev.trace.is_empty());
                assert!(ev.rejection.is_some());
            }
            TypecheckOutcome::Ok => panic!("should not typecheck"),
        }
    }

    #[test]
    fn forged_counterexamples_fail_the_right_leg() {
        let al = alpha();
        let t = library::copy(&al).unwrap();
        let x = al.get("x").unwrap();
        let y = al.get("y").unwrap();
        let tau_x = all_leaves(&al, x);
        let tau_y = all_leaves(&al, y);
        let tx = BinaryTree::parse("x", &al).unwrap();
        let ty = BinaryTree::parse("y", &al).unwrap();
        // Input not in τ₁.
        let ev = replay_counterexample(&t, &tau_x, &tau_x, &ty, &ty).unwrap();
        assert!(!ev.input_in_type && !ev.verified());
        // Output not producible (copy maps x to x, never to y).
        let ev = replay_counterexample(&t, &tau_x, &tau_y, &tx, &ty).unwrap();
        assert!(!ev.output_produced && !ev.verified());
        // Output actually conforms to τ₂.
        let ev = replay_counterexample(&t, &tau_x, &tau_x, &tx, &tx).unwrap();
        assert!(!ev.output_rejected && !ev.verified());
        assert!(ev.rejection.is_none());
    }
}
