//! `xmltc` — command-line front door to the typechecker.
//!
//! ```text
//! xmltc validate    <input.dtd> <doc.xml>
//! xmltc transform   <input.dtd> <sheet.xsl> <doc.xml>
//! xmltc typecheck   <input.dtd> <sheet.xsl> <output.dtd> [--stats|--json]
//!                   [--route auto|walk|mso] [--engine auto|lazy|eager]
//!                   [--state-limit N] [--threads N]
//! xmltc forward     <input.dtd> <sheet.xsl> <output.dtd>
//! ```
//!
//! File formats:
//! * `.dtd` — the paper's notation, one rule per line: `a := b*.c.e`
//!   (first rule's left-hand side is the root; `//` comments);
//! * `.xsl` — one template per line: `tag -> body`, where bodies use term
//!   syntax with `@apply` for `<xsl:apply-templates/>`;
//! * `.xml` — element-only XML.
//!
//! Observability: `--stats` appends a human-readable phase table to the
//! verdict; `--json` instead emits the full machine-readable
//! [`PipelineReport`](xmltc::obs::PipelineReport). Setting the `XMLTC_LOG`
//! environment variable logs phase enter/exit to stderr for any command.
//!
//! Exit code 0 = success / typechecks; 1 = validation or typecheck
//! failure (details on stdout); 2 = usage or input errors.

use std::process::ExitCode;
use xmltc::dtd::Dtd;
use xmltc::obs;
use xmltc::typecheck::{Engine, Route, TypecheckOptions};
use xmltc::xml::{parse_document, raw_to_xml};
use xmltc::xmlql::pipeline::{DocumentPipeline, DocumentVerdict};
use xmltc::xmlql::Stylesheet;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

/// Flags of the `typecheck` subcommand.
struct TypecheckFlags {
    stats: bool,
    json: bool,
    opts: TypecheckOptions,
}

/// Splits `rest` into positional arguments and recognized flags. Only the
/// flags named in `allowed` are accepted; anything else starting with `--`
/// is a usage error (exit 2).
fn parse_flags(rest: &[String], allowed: bool) -> Result<(Vec<&str>, TypecheckFlags), String> {
    let mut positional = Vec::new();
    let mut flags = TypecheckFlags {
        stats: false,
        json: false,
        opts: TypecheckOptions::default(),
    };
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        if !arg.starts_with("--") {
            positional.push(arg.as_str());
            continue;
        }
        if !allowed {
            return Err(format!("unknown flag `{arg}` for this command"));
        }
        match arg.as_str() {
            "--stats" => flags.stats = true,
            "--json" => flags.json = true,
            "--route" => {
                let v = it.next().ok_or("--route requires a value: auto|walk|mso")?;
                flags.opts.route = match v.as_str() {
                    "auto" => Route::Auto,
                    "walk" => Route::ForceWalk,
                    "mso" => Route::ForceMso,
                    other => return Err(format!("unknown route `{other}` (auto|walk|mso)")),
                };
            }
            "--engine" => {
                let v = it
                    .next()
                    .ok_or("--engine requires a value: auto|lazy|eager")?;
                flags.opts.engine = match v.as_str() {
                    "auto" => Engine::Auto,
                    "lazy" => Engine::Lazy,
                    "eager" => Engine::Eager,
                    other => return Err(format!("unknown engine `{other}` (auto|lazy|eager)")),
                };
            }
            "--state-limit" => {
                let v = it.next().ok_or("--state-limit requires a number")?;
                flags.opts.state_limit = v
                    .parse()
                    .map_err(|_| format!("invalid state limit `{v}`"))?;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads requires a number")?;
                flags.opts.threads = v
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .ok_or(format!("invalid thread count `{v}`"))?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok((positional, flags))
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let usage = "usage: xmltc <validate|transform|typecheck|forward> <files...> (see --help)";
    let cmd = args.first().ok_or(usage)?;
    match cmd.as_str() {
        "--help" | "-h" | "help" => {
            println!("{}", HELP);
            Ok(ExitCode::SUCCESS)
        }
        "validate" => {
            let (pos, _) = parse_flags(&args[1..], false)?;
            let [dtd_path, xml_path] = two(&pos)?;
            let dtd = Dtd::parse_text(&read(dtd_path)?).map_err(|e| e.to_string())?;
            let doc =
                parse_document(&read(xml_path)?, dtd.alphabet()).map_err(|e| e.to_string())?;
            match dtd.validate(&doc) {
                Ok(()) => {
                    println!("valid");
                    Ok(ExitCode::SUCCESS)
                }
                Err(e) => {
                    println!("invalid: {e}");
                    Ok(ExitCode::FAILURE)
                }
            }
        }
        "transform" => {
            let (pos, _) = parse_flags(&args[1..], false)?;
            let [dtd_path, xsl_path, xml_path] = three(&pos)?;
            let dtd = Dtd::parse_text(&read(dtd_path)?).map_err(|e| e.to_string())?;
            let sheet = Stylesheet::parse_text(&read(xsl_path)?).map_err(|e| e.to_string())?;
            let doc =
                parse_document(&read(xml_path)?, dtd.alphabet()).map_err(|e| e.to_string())?;
            let pipeline = DocumentPipeline::new(sheet, dtd).map_err(|e| e.to_string())?;
            let out = pipeline.transform(&doc).map_err(|e| e.to_string())?;
            println!("{}", raw_to_xml(&out));
            Ok(ExitCode::SUCCESS)
        }
        "typecheck" => {
            let (pos, flags) = parse_flags(&args[1..], true)?;
            let [dtd_path, xsl_path, out_dtd_path] = three(&pos)?;
            let dtd = Dtd::parse_text(&read(dtd_path)?).map_err(|e| e.to_string())?;
            let sheet = Stylesheet::parse_text(&read(xsl_path)?).map_err(|e| e.to_string())?;
            let out_dtd_text = read(out_dtd_path)?;
            if !flags.stats && !flags.json {
                // The uninstrumented fast path: identical output to older
                // versions, near-zero observability overhead.
                let pipeline = DocumentPipeline::new(sheet, dtd).map_err(|e| e.to_string())?;
                let verdict = pipeline
                    .typecheck_against_with(&out_dtd_text, &flags.opts)
                    .map_err(|e| e.to_string())?;
                return Ok(print_verdict(&verdict));
            }
            let (result, report) = obs::with_report(|| -> Result<DocumentVerdict, String> {
                let pipeline = DocumentPipeline::new(sheet, dtd).map_err(|e| e.to_string())?;
                let verdict = pipeline
                    .typecheck_against_with(&out_dtd_text, &flags.opts)
                    .map_err(|e| e.to_string())?;
                obs::record("verdict.ok", verdict.is_ok() as u64);
                Ok(verdict)
            });
            let verdict = match result {
                Ok(v) => v,
                Err(msg) => {
                    // Budget aborts and other pipeline errors still emit
                    // the partial report (how far the run got) before the
                    // usage-error exit.
                    if flags.json {
                        println!("{}", report.to_json_string());
                    } else {
                        print!("{}", report.render_table());
                    }
                    return Err(msg);
                }
            };
            if flags.json {
                println!("{}", report.to_json_string());
                return Ok(if verdict.is_ok() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                });
            }
            let code = print_verdict(&verdict);
            println!();
            print!("{}", report.render_table());
            Ok(code)
        }
        "forward" => {
            let (pos, _) = parse_flags(&args[1..], false)?;
            let [dtd_path, xsl_path, out_dtd_path] = three(&pos)?;
            let dtd = Dtd::parse_text(&read(dtd_path)?).map_err(|e| e.to_string())?;
            let sheet = Stylesheet::parse_text(&read(xsl_path)?).map_err(|e| e.to_string())?;
            let pipeline = DocumentPipeline::new(sheet, dtd).map_err(|e| e.to_string())?;
            match pipeline
                .forward_check(&read(out_dtd_path)?)
                .map_err(|e| e.to_string())?
            {
                None => {
                    println!("forward inference proves the spec (sound)");
                    Ok(ExitCode::SUCCESS)
                }
                Some(w) => {
                    println!("forward inference cannot prove the spec");
                    println!("image witness (possibly spurious): {}", raw_to_xml(&w));
                    println!("(run `xmltc typecheck` for the exact verdict)");
                    Ok(ExitCode::FAILURE)
                }
            }
        }
        other => Err(format!("unknown command `{other}`\n{usage}")),
    }
}

fn print_verdict(verdict: &DocumentVerdict) -> ExitCode {
    match verdict {
        DocumentVerdict::Ok => {
            println!("typechecks: every valid input maps into the output DTD");
            ExitCode::SUCCESS
        }
        DocumentVerdict::CounterExample { input, bad_output } => {
            println!("DOES NOT typecheck");
            println!("counterexample input: {}", raw_to_xml(input));
            if let Some(bad) = bad_output {
                println!("offending output:     {}", raw_to_xml(bad));
            }
            ExitCode::FAILURE
        }
    }
}

fn two<'a>(rest: &[&'a str]) -> Result<[&'a str; 2], String> {
    match rest {
        [a, b] => Ok([a, b]),
        _ => Err("expected exactly 2 file arguments".into()),
    }
}

fn three<'a>(rest: &[&'a str]) -> Result<[&'a str; 3], String> {
    match rest {
        [a, b, c] => Ok([a, b, c]),
        _ => Err("expected exactly 3 file arguments".into()),
    }
}

const HELP: &str = "\
xmltc — static typechecking for XML transformations
(Milo, Suciu, Vianu: Typechecking for XML Transformers, PODS 2000)

commands:
  validate  <input.dtd> <doc.xml>                dynamic DTD validation
  transform <input.dtd> <sheet.xsl> <doc.xml>    run the transformation
  typecheck <input.dtd> <sheet.xsl> <output.dtd> EXACT static typecheck
  forward   <input.dtd> <sheet.xsl> <output.dtd> forward-inference baseline

typecheck options:
  --stats            append a per-phase wall-time / automaton-size table
  --json             emit the machine-readable pipeline report instead
  --route R          Theorem 4.7 route: auto (default) | walk | mso
  --engine E         emptiness engine: auto (default) | lazy | eager
                     (auto = lazy on the walk route, eager on mso)
  --state-limit N    budget for intermediate automata (default 4000000)
  --threads N        walk-route worker threads (default: XMLTC_THREADS if
                     set, else available parallelism; verdict and automata
                     are identical for every N)

environment:
  XMLTC_LOG=1        log phase enter/exit to stderr
  XMLTC_THREADS=N    default walk-route worker threads

formats:
  .dtd   one rule per line:  a := b*.c.e     (first rule = root; // comments)
  .xsl   one template per line:  tag -> body(@apply)
  .xml   element-only XML";
