//! `xmltc` — command-line front door to the typechecker.
//!
//! ```text
//! xmltc validate    <input.dtd> <doc.xml>
//! xmltc transform   <input.dtd> <sheet.xsl> <doc.xml>
//! xmltc typecheck   <input.dtd> <sheet.xsl> <output.dtd>
//! xmltc forward     <input.dtd> <sheet.xsl> <output.dtd>
//! ```
//!
//! File formats:
//! * `.dtd` — the paper's notation, one rule per line: `a := b*.c.e`
//!   (first rule's left-hand side is the root; `//` comments);
//! * `.xsl` — one template per line: `tag -> body`, where bodies use term
//!   syntax with `@apply` for `<xsl:apply-templates/>`;
//! * `.xml` — element-only XML.
//!
//! Exit code 0 = success / typechecks; 1 = validation or typecheck
//! failure (details on stdout); 2 = usage or input errors.

use std::process::ExitCode;
use xmltc::dtd::Dtd;
use xmltc::xml::{parse_document, raw_to_xml};
use xmltc::xmlql::pipeline::{DocumentPipeline, DocumentVerdict};
use xmltc::xmlql::Stylesheet;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let usage = "usage: xmltc <validate|transform|typecheck|forward> <files...> (see --help)";
    let cmd = args.first().ok_or(usage)?;
    match cmd.as_str() {
        "--help" | "-h" | "help" => {
            println!("{}", HELP);
            Ok(ExitCode::SUCCESS)
        }
        "validate" => {
            let [dtd_path, xml_path] = two(&args[1..])?;
            let dtd = Dtd::parse_text(&read(dtd_path)?).map_err(|e| e.to_string())?;
            let doc = parse_document(&read(xml_path)?, dtd.alphabet())
                .map_err(|e| e.to_string())?;
            match dtd.validate(&doc) {
                Ok(()) => {
                    println!("valid");
                    Ok(ExitCode::SUCCESS)
                }
                Err(e) => {
                    println!("invalid: {e}");
                    Ok(ExitCode::FAILURE)
                }
            }
        }
        "transform" => {
            let [dtd_path, xsl_path, xml_path] = three(&args[1..])?;
            let dtd = Dtd::parse_text(&read(dtd_path)?).map_err(|e| e.to_string())?;
            let sheet =
                Stylesheet::parse_text(&read(xsl_path)?).map_err(|e| e.to_string())?;
            let doc = parse_document(&read(xml_path)?, dtd.alphabet())
                .map_err(|e| e.to_string())?;
            let pipeline = DocumentPipeline::new(sheet, dtd).map_err(|e| e.to_string())?;
            let out = pipeline.transform(&doc).map_err(|e| e.to_string())?;
            println!("{}", raw_to_xml(&out));
            Ok(ExitCode::SUCCESS)
        }
        "typecheck" => {
            let [dtd_path, xsl_path, out_dtd_path] = three(&args[1..])?;
            let dtd = Dtd::parse_text(&read(dtd_path)?).map_err(|e| e.to_string())?;
            let sheet =
                Stylesheet::parse_text(&read(xsl_path)?).map_err(|e| e.to_string())?;
            let pipeline = DocumentPipeline::new(sheet, dtd).map_err(|e| e.to_string())?;
            match pipeline
                .typecheck_against(&read(out_dtd_path)?)
                .map_err(|e| e.to_string())?
            {
                DocumentVerdict::Ok => {
                    println!("typechecks: every valid input maps into the output DTD");
                    Ok(ExitCode::SUCCESS)
                }
                DocumentVerdict::CounterExample { input, bad_output } => {
                    println!("DOES NOT typecheck");
                    println!("counterexample input: {}", raw_to_xml(&input));
                    if let Some(bad) = bad_output {
                        println!("offending output:     {}", raw_to_xml(&bad));
                    }
                    Ok(ExitCode::FAILURE)
                }
            }
        }
        "forward" => {
            let [dtd_path, xsl_path, out_dtd_path] = three(&args[1..])?;
            let dtd = Dtd::parse_text(&read(dtd_path)?).map_err(|e| e.to_string())?;
            let sheet =
                Stylesheet::parse_text(&read(xsl_path)?).map_err(|e| e.to_string())?;
            let pipeline = DocumentPipeline::new(sheet, dtd).map_err(|e| e.to_string())?;
            match pipeline
                .forward_check(&read(out_dtd_path)?)
                .map_err(|e| e.to_string())?
            {
                None => {
                    println!("forward inference proves the spec (sound)");
                    Ok(ExitCode::SUCCESS)
                }
                Some(w) => {
                    println!("forward inference cannot prove the spec");
                    println!("image witness (possibly spurious): {}", raw_to_xml(&w));
                    println!("(run `xmltc typecheck` for the exact verdict)");
                    Ok(ExitCode::FAILURE)
                }
            }
        }
        other => Err(format!("unknown command `{other}`\n{usage}")),
    }
}

fn two(rest: &[String]) -> Result<[&str; 2], String> {
    match rest {
        [a, b] => Ok([a, b]),
        _ => Err("expected exactly 2 file arguments".into()),
    }
}

fn three(rest: &[String]) -> Result<[&str; 3], String> {
    match rest {
        [a, b, c] => Ok([a, b, c]),
        _ => Err("expected exactly 3 file arguments".into()),
    }
}

const HELP: &str = "\
xmltc — static typechecking for XML transformations
(Milo, Suciu, Vianu: Typechecking for XML Transformers, PODS 2000)

commands:
  validate  <input.dtd> <doc.xml>                dynamic DTD validation
  transform <input.dtd> <sheet.xsl> <doc.xml>    run the transformation
  typecheck <input.dtd> <sheet.xsl> <output.dtd> EXACT static typecheck
  forward   <input.dtd> <sheet.xsl> <output.dtd> forward-inference baseline

formats:
  .dtd   one rule per line:  a := b*.c.e     (first rule = root; // comments)
  .xsl   one template per line:  tag -> body(@apply)
  .xml   element-only XML";
