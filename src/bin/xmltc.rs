//! `xmltc` — command-line front door to the typechecker.
//!
//! ```text
//! xmltc validate    <input.dtd> <doc.xml> [--stats|--json] [--trace-out F]
//! xmltc transform   <input.dtd> <sheet.xsl> <doc.xml> [--stats|--json]
//!                   [--trace-out F]
//! xmltc typecheck   <input.dtd> <sheet.xsl> <output.dtd> [--stats|--json]
//!                   [--trace-out F] [--explain-out F] [--route auto|walk|mso]
//!                   [--engine auto|lazy|eager] [--state-limit N] [--threads N]
//!                   [--chunk N]
//! xmltc explain     <input.dtd> <sheet.xsl> <output.dtd> [--json]
//!                   [--explain-out F] [--route ..] [--engine ..] [...]
//! xmltc forward     <input.dtd> <sheet.xsl> <output.dtd>
//! xmltc bench-diff  <baseline.json> <candidate.json> [--threshold p=pct]
//!                   [--advisory] [--json]
//! xmltc bench       --family <name> [--threads 1,2,4] [--reps N] [--quick]
//!                   [--json]
//! xmltc bench       --list
//! xmltc corpus      <family> <index> [--seed S] [--minimize] [--state-limit N]
//! xmltc corpus      --list
//! xmltc serve       [--addr H:P] [--cache-bytes N] [--oneshot]
//!                   [--trace-out F] [--json]
//! xmltc client      <addr> <validate|transform|typecheck|stats|shutdown>
//!                   <files...> [--route ..] [--engine ..] [--state-limit N]
//!                   [--threads N] [--explain] [--id N] [--json]
//! ```
//!
//! File formats:
//! * `.dtd` — the paper's notation, one rule per line: `a := b*.c.e`
//!   (first rule's left-hand side is the root; `//` comments);
//! * `.xsl` — one template per line: `tag -> body`, where bodies use term
//!   syntax with `@apply` for `<xsl:apply-templates/>`;
//! * `.xml` — element-only XML.
//!
//! Observability: `--stats` appends a human-readable phase table to the
//! verdict; `--json` instead emits the full machine-readable
//! [`PipelineReport`](xmltc::obs::PipelineReport); `--trace-out FILE`
//! records the event journal and writes a Chrome trace-event JSON file
//! (open in `chrome://tracing` or Perfetto) with one track per thread and
//! counter tracks for the hot-loop gauges. Setting the `XMLTC_LOG`
//! environment variable logs phase enter/exit to stderr for any command
//! (`XMLTC_LOG_FORMAT=json` switches those lines to JSON objects).
//! `bench-diff` compares two `BENCH_typecheck.json` dumps and exits
//! nonzero when a watched metric regressed beyond its threshold.
//! `explain` renders the verdict-provenance report (counterexample input,
//! replayed transducer run, offending output, DTD violation), and
//! `typecheck --explain-out FILE` writes the same report as JSON (schema
//! `xmltc.explain/1`) next to the normal verdict.
//!
//! Exit code 0 = success / typechecks; 1 = validation or typecheck
//! failure (details on stdout); 2 = usage or input errors.

use std::process::ExitCode;
use xmltc::dtd::Dtd;
use xmltc::obs;
use xmltc::typecheck::{Engine, Route, TypecheckOptions};
use xmltc::xml::{parse_document, raw_to_xml};
use xmltc::xmlql::pipeline::{DocumentPipeline, DocumentVerdict};
use xmltc::xmlql::Stylesheet;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

/// Which flags a subcommand accepts.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum FlagLevel {
    /// Positional arguments only.
    None,
    /// Reporting flags: `--stats`, `--json`, `--trace-out`.
    Report,
    /// Reporting plus the typecheck pipeline options.
    Typecheck,
}

/// Flags of the reporting subcommands (`typecheck` accepts all of them,
/// `validate`/`transform` the reporting subset).
struct TypecheckFlags {
    stats: bool,
    json: bool,
    trace_out: Option<String>,
    explain_out: Option<String>,
    opts: TypecheckOptions,
}

/// Splits `rest` into positional arguments and recognized flags. Only the
/// flags admitted by `allowed` are accepted; anything else starting with
/// `--` is a usage error (exit 2).
fn parse_flags(rest: &[String], allowed: FlagLevel) -> Result<(Vec<&str>, TypecheckFlags), String> {
    let mut positional = Vec::new();
    let mut flags = TypecheckFlags {
        stats: false,
        json: false,
        trace_out: None,
        explain_out: None,
        opts: TypecheckOptions::default(),
    };
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        if !arg.starts_with("--") {
            positional.push(arg.as_str());
            continue;
        }
        let level = match arg.as_str() {
            "--stats" | "--json" | "--trace-out" => FlagLevel::Report,
            _ => FlagLevel::Typecheck,
        };
        if allowed < level {
            return Err(format!("unknown flag `{arg}` for this command"));
        }
        match arg.as_str() {
            "--stats" => flags.stats = true,
            "--json" => flags.json = true,
            "--trace-out" => {
                let v = it.next().ok_or("--trace-out requires a file path")?;
                flags.trace_out = Some(v.clone());
            }
            "--explain-out" => {
                let v = it.next().ok_or("--explain-out requires a file path")?;
                flags.explain_out = Some(v.clone());
            }
            "--route" => {
                let v = it.next().ok_or("--route requires a value: auto|walk|mso")?;
                flags.opts.route = match v.as_str() {
                    "auto" => Route::Auto,
                    "walk" => Route::ForceWalk,
                    "mso" => Route::ForceMso,
                    other => return Err(format!("unknown route `{other}` (auto|walk|mso)")),
                };
            }
            "--engine" => {
                let v = it
                    .next()
                    .ok_or("--engine requires a value: auto|lazy|eager")?;
                flags.opts.engine = match v.as_str() {
                    "auto" => Engine::Auto,
                    "lazy" => Engine::Lazy,
                    "eager" => Engine::Eager,
                    other => return Err(format!("unknown engine `{other}` (auto|lazy|eager)")),
                };
            }
            "--state-limit" => {
                let v = it.next().ok_or("--state-limit requires a number")?;
                flags.opts.state_limit = v
                    .parse()
                    .map_err(|_| format!("invalid state limit `{v}`"))?;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads requires a number")?;
                flags.opts.threads = v
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .ok_or(format!("invalid thread count `{v}`"))?;
            }
            "--chunk" => {
                let v = it.next().ok_or("--chunk requires a number")?;
                flags.opts.chunk = v
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .ok_or(format!("invalid chunk size `{v}`"))?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok((positional, flags))
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let usage =
        "usage: xmltc <validate|transform|typecheck|forward|bench|bench-diff|serve|client> \
         <files...> (see --help)";
    let cmd = args.first().ok_or(usage)?;
    match cmd.as_str() {
        "--help" | "-h" | "help" => {
            println!("{}", HELP);
            Ok(ExitCode::SUCCESS)
        }
        "validate" => {
            let (pos, flags) = parse_flags(&args[1..], FlagLevel::Report)?;
            let [dtd_path, xml_path] = two(&pos)?;
            let dtd_text = read(dtd_path)?;
            let xml_text = read(xml_path)?;
            if flags.trace_out.is_some() {
                obs::journal::enable();
            }
            let run = || -> Result<Result<(), String>, String> {
                let dtd = {
                    let _s = obs::span("dtd.parse");
                    Dtd::parse_text(&dtd_text).map_err(|e| e.to_string())?
                };
                let doc = {
                    let _s = obs::span("doc.parse");
                    parse_document(&xml_text, dtd.alphabet()).map_err(|e| e.to_string())?
                };
                let verdict = {
                    let _s = obs::span("dtd.validate");
                    dtd.validate(&doc).map_err(|e| e.to_string())
                };
                obs::record("verdict.ok", verdict.is_ok() as u64);
                Ok(verdict)
            };
            let print = |v: &Result<(), String>, quiet: bool| match v {
                Ok(()) => {
                    if !quiet {
                        println!("valid");
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    if !quiet {
                        println!("invalid: {e}");
                    }
                    ExitCode::FAILURE
                }
            };
            if !flags.stats && !flags.json {
                let verdict = run();
                write_trace(&flags.trace_out)?;
                return Ok(print(&verdict?, false));
            }
            let (result, report) = obs::with_report(run);
            write_trace(&flags.trace_out)?;
            report_and_exit(result, &report, &flags, print)
        }
        "transform" => {
            let (pos, flags) = parse_flags(&args[1..], FlagLevel::Report)?;
            let [dtd_path, xsl_path, xml_path] = three(&pos)?;
            let dtd_text = read(dtd_path)?;
            let xsl_text = read(xsl_path)?;
            let xml_text = read(xml_path)?;
            if flags.trace_out.is_some() {
                obs::journal::enable();
            }
            let run = || -> Result<String, String> {
                let dtd = {
                    let _s = obs::span("dtd.parse");
                    Dtd::parse_text(&dtd_text).map_err(|e| e.to_string())?
                };
                let sheet = {
                    let _s = obs::span("sheet.parse");
                    Stylesheet::parse_text(&xsl_text).map_err(|e| e.to_string())?
                };
                let doc = {
                    let _s = obs::span("doc.parse");
                    parse_document(&xml_text, dtd.alphabet()).map_err(|e| e.to_string())?
                };
                let pipeline = DocumentPipeline::new(sheet, dtd).map_err(|e| e.to_string())?;
                let out = pipeline.transform(&doc).map_err(|e| e.to_string())?;
                Ok(raw_to_xml(&out))
            };
            let print = |out: &String, quiet: bool| {
                if !quiet {
                    println!("{out}");
                }
                ExitCode::SUCCESS
            };
            if !flags.stats && !flags.json {
                let out = run();
                write_trace(&flags.trace_out)?;
                return Ok(print(&out?, false));
            }
            let (result, report) = obs::with_report(run);
            write_trace(&flags.trace_out)?;
            report_and_exit(result, &report, &flags, print)
        }
        "typecheck" => {
            let (pos, flags) = parse_flags(&args[1..], FlagLevel::Typecheck)?;
            let [dtd_path, xsl_path, out_dtd_path] = three(&pos)?;
            let dtd = Dtd::parse_text(&read(dtd_path)?).map_err(|e| e.to_string())?;
            let sheet = Stylesheet::parse_text(&read(xsl_path)?).map_err(|e| e.to_string())?;
            let out_dtd_text = read(out_dtd_path)?;
            if flags.trace_out.is_some() {
                obs::journal::enable();
            }
            let run = || -> Result<DocumentVerdict, String> {
                let pipeline = DocumentPipeline::new(sheet, dtd).map_err(|e| e.to_string())?;
                let verdict = match &flags.explain_out {
                    Some(path) => {
                        let (verdict, report) = pipeline
                            .explain_against_with(&out_dtd_text, &flags.opts)
                            .map_err(|e| e.to_string())?;
                        write_explain(path, &report)?;
                        verdict
                    }
                    None => pipeline
                        .typecheck_against_with(&out_dtd_text, &flags.opts)
                        .map_err(|e| e.to_string())?,
                };
                obs::record("verdict.ok", verdict.is_ok() as u64);
                Ok(verdict)
            };
            let print = |v: &DocumentVerdict, quiet: bool| {
                if quiet {
                    if v.is_ok() {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                } else {
                    print_verdict(v)
                }
            };
            if !flags.stats && !flags.json {
                // The uninstrumented fast path: identical output to older
                // versions, near-zero observability overhead (the journal,
                // when tracing, still records the timeline).
                let verdict = run();
                write_trace(&flags.trace_out)?;
                return Ok(print(&verdict?, false));
            }
            let (result, report) = obs::with_report(run);
            write_trace(&flags.trace_out)?;
            report_and_exit(result, &report, &flags, print)
        }
        "explain" => {
            let (pos, flags) = parse_flags(&args[1..], FlagLevel::Typecheck)?;
            if flags.stats || flags.trace_out.is_some() {
                return Err("explain does not take `--stats`/`--trace-out` (use typecheck)".into());
            }
            let [dtd_path, xsl_path, out_dtd_path] = three(&pos)?;
            let dtd = Dtd::parse_text(&read(dtd_path)?).map_err(|e| e.to_string())?;
            let sheet = Stylesheet::parse_text(&read(xsl_path)?).map_err(|e| e.to_string())?;
            let out_dtd_text = read(out_dtd_path)?;
            let pipeline = DocumentPipeline::new(sheet, dtd).map_err(|e| e.to_string())?;
            let (verdict, report) = pipeline
                .explain_against_with(&out_dtd_text, &flags.opts)
                .map_err(|e| e.to_string())?;
            if let Some(path) = &flags.explain_out {
                write_explain(path, &report)?;
            }
            if flags.json {
                println!("{}", report.to_json_string());
            } else {
                print!("{}", report.render_text());
            }
            Ok(if verdict.is_ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        "bench-diff" => bench_diff(&args[1..]),
        "bench" => bench(&args[1..]),
        "corpus" => corpus(&args[1..]),
        "serve" => serve(&args[1..]),
        "client" => client(&args[1..]),
        "forward" => {
            let (pos, _) = parse_flags(&args[1..], FlagLevel::None)?;
            let [dtd_path, xsl_path, out_dtd_path] = three(&pos)?;
            let dtd = Dtd::parse_text(&read(dtd_path)?).map_err(|e| e.to_string())?;
            let sheet = Stylesheet::parse_text(&read(xsl_path)?).map_err(|e| e.to_string())?;
            let pipeline = DocumentPipeline::new(sheet, dtd).map_err(|e| e.to_string())?;
            match pipeline
                .forward_check(&read(out_dtd_path)?)
                .map_err(|e| e.to_string())?
            {
                None => {
                    println!("forward inference proves the spec (sound)");
                    Ok(ExitCode::SUCCESS)
                }
                Some(w) => {
                    println!("forward inference cannot prove the spec");
                    println!("image witness (possibly spurious): {}", raw_to_xml(&w));
                    println!("(run `xmltc typecheck` for the exact verdict)");
                    Ok(ExitCode::FAILURE)
                }
            }
        }
        other => Err(format!("unknown command `{other}`\n{usage}")),
    }
}

/// Stops the journal and writes the Chrome trace when `--trace-out` was
/// given. Called after the pipeline runs — including failed ones, so a
/// budget abort still leaves a timeline of how far it got.
fn write_trace(trace_out: &Option<String>) -> Result<(), String> {
    let Some(path) = trace_out else {
        return Ok(());
    };
    let journal = obs::journal::take();
    let events = journal.total_events();
    let text = obs::chrome::chrome_trace_string(&journal);
    std::fs::write(path, text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
    eprintln!("trace written to {path} ({events} events)");
    Ok(())
}

/// Writes the explain report JSON (schema `xmltc.explain/1`) for
/// `--explain-out`.
fn write_explain(path: &str, report: &obs::ExplainReport) -> Result<(), String> {
    let mut text = report.to_json_string();
    text.push('\n');
    std::fs::write(path, text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
    eprintln!("explain report written to {path}");
    Ok(())
}

/// Shared tail of the instrumented subcommands: prints the report (JSON
/// replaces the normal output, `--stats` appends the table) and derives
/// the exit code from the verdict via `print`. Pipeline errors still emit
/// the partial report (how far the run got) before the usage-error exit.
fn report_and_exit<T>(
    result: Result<T, String>,
    report: &obs::PipelineReport,
    flags: &TypecheckFlags,
    print: impl Fn(&T, bool) -> ExitCode,
) -> Result<ExitCode, String> {
    let value = match result {
        Ok(v) => v,
        Err(msg) => {
            if flags.json {
                println!("{}", report.to_json_string());
            } else {
                print!("{}", report.render_table());
            }
            return Err(msg);
        }
    };
    if flags.json {
        println!("{}", report.to_json_string());
        return Ok(print(&value, true));
    }
    let code = print(&value, false);
    println!();
    print!("{}", report.render_table());
    Ok(code)
}

/// `xmltc bench --family <name>`: build one seeded instance family and
/// time the Theorem 4.7 walk construction at each requested thread count
/// — the same curves the typecheck bench dumps as `walk_scaling`, without
/// the rest of the bench. `--list` prints the family names. Quick mode
/// (`--quick` or `XMLTC_BENCH_QUICK=1`) keeps only the smallest instance
/// and one rep.
fn bench(rest: &[String]) -> Result<ExitCode, String> {
    use xmltc::bench::scaled;
    use xmltc::obs::Json;
    const FAMILIES: [&str; 1] = ["walk-scale"];
    let mut family: Option<String> = None;
    let mut quick = std::env::var("XMLTC_BENCH_QUICK").is_ok();
    let mut json = false;
    let mut threads: Vec<usize> = Vec::new();
    let mut reps: Option<usize> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => {
                for f in FAMILIES {
                    println!("{f}");
                }
                return Ok(ExitCode::SUCCESS);
            }
            "--family" => {
                let v = it.next().ok_or("--family requires a name (see --list)")?;
                family = Some(v.clone());
            }
            "--quick" => quick = true,
            "--json" => json = true,
            "--threads" => {
                let v = it
                    .next()
                    .ok_or("--threads requires a comma list, e.g. 1,2,4")?;
                threads = v
                    .split(',')
                    .map(|t| {
                        t.parse::<usize>()
                            .ok()
                            .filter(|&n| n > 0)
                            .ok_or_else(|| format!("invalid thread count `{t}`"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--reps" => {
                let v = it.next().ok_or("--reps requires a number")?;
                reps = Some(
                    v.parse()
                        .ok()
                        .filter(|&n: &usize| n > 0)
                        .ok_or(format!("invalid rep count `{v}`"))?,
                );
            }
            other => return Err(format!("unknown argument `{other}` for bench")),
        }
    }
    let family = family.ok_or(
        "usage: xmltc bench --family <name> [--threads 1,2,4] [--reps N] [--quick] [--json] \
         (xmltc bench --list for family names)",
    )?;
    if family != "walk-scale" {
        return Err(format!(
            "unknown bench family `{family}` (one of: {})",
            FAMILIES.join(", ")
        ));
    }
    if threads.is_empty() {
        threads = if quick { vec![1, 4] } else { vec![1, 2, 4, 8] };
    }
    let reps = reps.unwrap_or(if quick { 1 } else { 2 });
    let mut rows = Vec::new();
    for spec in scaled::walk_scale_specs(quick) {
        let a = scaled::build(&spec);
        let (points, dbta) = scaled::scale_curve(&a, &threads, reps);
        if !json {
            let curve: Vec<String> = points
                .iter()
                .map(|p| format!("{}T {:.1}ms", p.threads, p.wall_ms))
                .collect();
            println!(
                "{:<8} states={:<5} dbta={:<5} jobs={:<6} {}",
                spec.name,
                spec.states,
                dbta,
                points[0].stats.memo_misses,
                curve.join("  ")
            );
        }
        let seq_ms = points[0].wall_ms;
        rows.push(Json::obj(vec![
            ("name", Json::Str(spec.name.into())),
            ("states", Json::U64(spec.states as u64)),
            ("dbta_states", Json::U64(dbta)),
            ("jobs", Json::U64(points[0].stats.memo_misses)),
            (
                "curve",
                Json::Array(
                    points
                        .iter()
                        .map(|p| {
                            Json::obj(vec![
                                ("threads", Json::U64(p.threads as u64)),
                                ("wall_ms", Json::F64(p.wall_ms)),
                                ("speedup", Json::F64(seq_ms / p.wall_ms.max(1e-9))),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]));
    }
    if json {
        let host_cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        let out = Json::obj(vec![
            ("schema", Json::Str("xmltc.bench-family/1".into())),
            ("family", Json::Str(family)),
            ("host_cores", Json::U64(host_cores as u64)),
            ("instances", Json::Array(rows)),
        ]);
        println!("{}", out.encode());
    }
    Ok(ExitCode::SUCCESS)
}

/// `xmltc bench-diff <baseline.json> <candidate.json>`: compares two
/// benchmark dumps against the watch list, exiting 1 on regression (0 in
/// `--advisory` mode), 2 on unreadable input.
fn bench_diff(rest: &[String]) -> Result<ExitCode, String> {
    let mut paths: Vec<&str> = Vec::new();
    let mut advisory = false;
    let mut json = false;
    let mut watches = obs::diff::default_watches();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--advisory" => advisory = true,
            "--json" => json = true,
            "--threshold" => {
                let v = it
                    .next()
                    .ok_or("--threshold requires `metric.path=percent`")?;
                let (path, pct) = v
                    .split_once('=')
                    .ok_or(format!("invalid threshold `{v}` (want path=percent)"))?;
                let pct: f64 = pct
                    .parse()
                    .ok()
                    .filter(|p: &f64| p.is_finite() && *p >= 0.0)
                    .ok_or(format!("invalid threshold percent `{pct}`"))?;
                match watches.iter_mut().find(|w| w.path == path) {
                    Some(w) => w.threshold = pct / 100.0,
                    None => watches.push(obs::diff::Watch::lower(path, pct / 100.0)),
                }
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag `{other}` for bench-diff"));
            }
            _ => paths.push(arg.as_str()),
        }
    }
    let [base_path, cand_path] = two(&paths)?;
    let parse = |path: &str| -> Result<obs::Json, String> {
        obs::Json::parse(&read(path)?).map_err(|e| format!("cannot parse `{path}`: {e}"))
    };
    let base = parse(base_path)?;
    let cand = parse(cand_path)?;
    let report = obs::diff::diff(&base, &cand, &watches);
    if json {
        println!("{}", report.to_json().encode());
    } else {
        print!("{}", report.render_table());
    }
    if !report.regressed() {
        return Ok(ExitCode::SUCCESS);
    }
    let n = report.regressions().count();
    eprintln!(
        "{n} watched metric{} regressed beyond threshold{}",
        if n == 1 { "" } else { "s" },
        if advisory {
            " (advisory mode: not failing)"
        } else {
            ""
        },
    );
    Ok(if advisory {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// `xmltc corpus <family> <index>`: regenerates one adversarial corpus
/// case from the seeded generator, runs both emptiness engines on it, and
/// prints the (transducer, τ₁, τ₂) triple with the differential verdict.
/// Exit 0 when the engines agree (or the case exceeds the corpus state
/// budget and is reported as a resource skip, mirroring the harness), 1 on
/// a disagreement (with the minimized triple), 2 on usage errors.
fn corpus(rest: &[String]) -> Result<ExitCode, String> {
    use xmltc::dsl::{
        case_seed, generate, minimize_scenario, Family, Scenario, CORPUS_STATE_LIMIT, FAMILIES,
    };
    use xmltc::typecheck::differential::differential_emptiness;
    use xmltc::typecheck::inverse::violation_nta;
    use xmltc::typecheck::TypecheckError;

    let mut positional: Vec<&str> = Vec::new();
    let mut seed = 0xc0deu64;
    let mut minimize = false;
    let mut state_limit = CORPUS_STATE_LIMIT;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => {
                for f in FAMILIES {
                    println!("{}", f.name());
                }
                return Ok(ExitCode::SUCCESS);
            }
            "--seed" => {
                let v = it.next().ok_or("--seed requires a number")?;
                let digits = v.strip_prefix("0x").unwrap_or(v);
                let radix = if digits.len() < v.len() { 16 } else { 10 };
                seed = u64::from_str_radix(digits, radix)
                    .map_err(|_| format!("invalid seed `{v}`"))?;
            }
            "--state-limit" => {
                let v = it.next().ok_or("--state-limit requires a number")?;
                state_limit = v
                    .parse()
                    .map_err(|_| format!("invalid state limit `{v}`"))?;
            }
            "--minimize" => minimize = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown flag `{other}` for corpus"));
            }
            _ => positional.push(arg.as_str()),
        }
    }
    let [family_name, index_str] = two(&positional).map_err(|_| {
        "usage: xmltc corpus <family> <index> [--seed S] [--minimize] [--state-limit N]".to_string()
    })?;
    let family = Family::from_name(family_name).ok_or_else(|| {
        let names: Vec<&str> = FAMILIES.iter().map(|f| f.name()).collect();
        format!(
            "unknown family `{family_name}` (one of: {})",
            names.join(", ")
        )
    })?;
    let index: u64 = index_str
        .parse()
        .map_err(|_| format!("invalid case index `{index_str}`"))?;

    let scenario = generate(seed, family, index);
    print!("{}", scenario.render());
    println!("digest: {:#018x}", scenario.digest());
    println!("case seed: {:#018x}", case_seed(seed, family, index));

    let opts = TypecheckOptions {
        state_limit,
        ..TypecheckOptions::default()
    };
    let compiled = scenario
        .compile()
        .map_err(|e| format!("corpus case failed to lower: {e}"))?;
    let verdict =
        match differential_emptiness(&compiled.transducer, &compiled.tau1, &compiled.tau2, &opts) {
            Ok(v) => v,
            Err(TypecheckError::TooManyStates { n }) => {
                // Same semantics as the harness: the case is recorded as a
                // resource skip, not a verdict (rare walk-construction
                // blowups cost super-linear time per state — a hang
                // without the budget).
                println!();
                println!(
                    "resource skip: state budget exceeded at {n} \
                     (limit {state_limit}; raise with --state-limit)"
                );
                return Ok(ExitCode::SUCCESS);
            }
            Err(e) => return Err(format!("differential run failed: {e}")),
        };
    let show = |w: &Option<xmltc::trees::BinaryTree>| match w {
        Some(t) => format!("counterexample {t}"),
        None => "typechecks (no violation reachable from τ₁)".to_string(),
    };
    println!();
    println!(
        "route: {}",
        if verdict.route_is_walk { "walk" } else { "mso" }
    );
    println!("violation automaton: {} states", verdict.violation_states);
    println!("eager: {}", show(&verdict.eager_witness));
    println!("lazy:  {}", show(&verdict.lazy_witness));

    if !verdict.agree() {
        let still_disagrees = |cand: &Scenario| {
            let Ok(c) = cand.compile() else {
                return false;
            };
            differential_emptiness(&c.transducer, &c.tau1, &c.tau2, &opts)
                .map(|v| !v.agree())
                .unwrap_or(false)
        };
        let out = minimize_scenario(&scenario, still_disagrees);
        println!(
            "ENGINES DISAGREE — minimized triple ({} components removed):",
            out.removed
        );
        print!("{}", out.scenario.render());
        return Ok(ExitCode::FAILURE);
    }
    println!("engines agree");

    if minimize {
        let fails = |cand: &Scenario| {
            let Ok(c) = cand.compile() else {
                return false;
            };
            let Ok(v) = violation_nta(&c.transducer, &c.tau2, &opts) else {
                return false;
            };
            !c.tau1.intersect(&v).is_empty()
        };
        println!();
        if fails(&scenario) {
            let out = minimize_scenario(&scenario, fails);
            println!(
                "minimized while preserving the counterexample ({} of {} candidate removals kept):",
                out.removed, out.tried
            );
            print!("{}", out.scenario.render());
        } else {
            println!("case typechecks: nothing to minimize against");
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// `xmltc serve`: bind the typecheck service and run until a `shutdown`
/// request or SIGINT; then flush the trace (if recording) and print the
/// whole-run report (requests served, cache hits/misses/evictions).
fn serve(rest: &[String]) -> Result<ExitCode, String> {
    use xmltc::service::server::sigint;
    use xmltc::service::{ServeConfig, Server};
    let mut cfg = ServeConfig::default();
    let mut trace_out: Option<String> = None;
    let mut json = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => {
                cfg.addr = it.next().ok_or("--addr requires host:port")?.clone();
            }
            "--cache-bytes" => {
                let v = it.next().ok_or("--cache-bytes requires a byte count")?;
                cfg.cache_bytes = v
                    .parse()
                    .map_err(|_| format!("invalid cache byte budget `{v}`"))?;
            }
            "--oneshot" => cfg.oneshot = true,
            "--trace-out" => {
                let v = it.next().ok_or("--trace-out requires a file path")?;
                trace_out = Some(v.clone());
            }
            "--json" => json = true,
            other => return Err(format!("unknown argument `{other}` for serve")),
        }
    }
    if trace_out.is_some() {
        obs::journal::enable();
    }
    sigint::install();
    let server = Server::bind(&cfg).map_err(|e| format!("cannot bind `{}`: {e}", cfg.addr))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    // Scripts (and the CLI tests) wait for this exact line before
    // connecting; flush so it is visible through a pipe immediately.
    println!("xmltc serve: listening on {addr}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let report = server.run();
    write_trace(&trace_out)?;
    if json {
        println!("{}", report.to_json_string());
    } else {
        print!("{}", report.render_table());
    }
    Ok(ExitCode::SUCCESS)
}

/// `xmltc client <addr> <command> <files...>`: send one request to a
/// running `xmltc serve` and render the response. Exit codes mirror the
/// local subcommands: 0 ok/typechecks, 1 invalid/counterexample, 2 errors.
fn client(rest: &[String]) -> Result<ExitCode, String> {
    use xmltc::obs::Json;
    use xmltc::service::Client;
    let mut positional: Vec<&str> = Vec::new();
    let mut json_out = false;
    let mut explain = false;
    let mut id: Option<u64> = None;
    let mut options: Vec<(&'static str, Json)> = Vec::new();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json_out = true,
            "--explain" => explain = true,
            "--id" => {
                let v = it.next().ok_or("--id requires a number")?;
                id = Some(v.parse().map_err(|_| format!("invalid id `{v}`"))?);
            }
            "--route" => {
                let v = it.next().ok_or("--route requires a value: auto|walk|mso")?;
                options.push(("route", Json::Str(v.clone())));
            }
            "--engine" => {
                let v = it
                    .next()
                    .ok_or("--engine requires a value: auto|lazy|eager")?;
                options.push(("engine", Json::Str(v.clone())));
            }
            "--state-limit" => {
                let v = it.next().ok_or("--state-limit requires a number")?;
                let n: u64 = v
                    .parse()
                    .map_err(|_| format!("invalid state limit `{v}`"))?;
                options.push(("state_limit", Json::U64(n)));
            }
            "--threads" => {
                let v = it.next().ok_or("--threads requires a number")?;
                let n: u64 = v
                    .parse()
                    .map_err(|_| format!("invalid thread count `{v}`"))?;
                options.push(("threads", Json::U64(n)));
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag `{other}` for client"));
            }
            _ => positional.push(arg.as_str()),
        }
    }
    let usage =
        "usage: xmltc client <addr> <validate|transform|typecheck|stats|shutdown> <files...>";
    if positional.len() < 2 {
        return Err(usage.into());
    }
    let (addr, cmd, files) = (positional[0], positional[1], &positional[2..]);
    let mut fields: Vec<(&str, Json)> = vec![("cmd", Json::Str(cmd.to_string()))];
    if let Some(id) = id {
        fields.push(("id", Json::U64(id)));
    }
    match cmd {
        "validate" => {
            let [dtd_path, xml_path] = two(files)?;
            fields.push(("input_dtd", Json::Str(read(dtd_path)?)));
            fields.push(("document", Json::Str(read(xml_path)?)));
        }
        "transform" => {
            let [dtd_path, xsl_path, xml_path] = three(files)?;
            fields.push(("input_dtd", Json::Str(read(dtd_path)?)));
            fields.push(("stylesheet", Json::Str(read(xsl_path)?)));
            fields.push(("document", Json::Str(read(xml_path)?)));
        }
        "typecheck" => {
            let [dtd_path, xsl_path, out_dtd_path] = three(files)?;
            fields.push(("input_dtd", Json::Str(read(dtd_path)?)));
            fields.push(("stylesheet", Json::Str(read(xsl_path)?)));
            fields.push(("output_dtd", Json::Str(read(out_dtd_path)?)));
            fields.append(&mut options);
            if explain {
                fields.push(("explain", Json::Bool(true)));
            }
        }
        "stats" | "shutdown" => {
            if !files.is_empty() {
                return Err(format!("`{cmd}` takes no file arguments"));
            }
        }
        other => return Err(format!("unknown client command `{other}`\n{usage}")),
    }
    let request = Json::obj(fields);
    let mut conn = Client::connect(addr).map_err(|e| format!("cannot connect to `{addr}`: {e}"))?;
    let response = conn.roundtrip(&request)?;
    if json_out {
        println!("{}", response.encode());
        return Ok(client_exit_code(&response));
    }
    render_client_response(cmd, &response)
}

/// Exit code from a service response: 2 on request errors, 1 on negative
/// verdicts (invalid document / counterexample), 0 otherwise.
fn client_exit_code(response: &xmltc::obs::Json) -> ExitCode {
    use xmltc::obs::Json;
    if response.get("ok") != Some(&Json::Bool(true)) {
        return ExitCode::from(2);
    }
    match response.at("result.verdict").and_then(Json::as_str) {
        Some("invalid") | Some("counterexample") => ExitCode::FAILURE,
        _ => ExitCode::SUCCESS,
    }
}

/// Human rendering of a service response, mirroring the local commands'
/// output plus a `cache:` summary line.
fn render_client_response(cmd: &str, response: &xmltc::obs::Json) -> Result<ExitCode, String> {
    use xmltc::obs::Json;
    if response.get("ok") != Some(&Json::Bool(true)) {
        let msg = response
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("unknown server error");
        return Err(format!("server error: {msg}"));
    }
    match cmd {
        "validate" => match response.at("result.verdict").and_then(Json::as_str) {
            Some("valid") => println!("valid"),
            _ => {
                let reason = response
                    .at("result.reason")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown");
                println!("invalid: {reason}");
            }
        },
        "transform" => {
            if let Some(out) = response.at("result.output").and_then(Json::as_str) {
                println!("{out}");
            }
        }
        "typecheck" => {
            match response.at("result.verdict").and_then(Json::as_str) {
                Some("typechecks") => {
                    println!("typechecks: every valid input maps into the output DTD");
                }
                _ => {
                    println!("DOES NOT typecheck");
                    if let Some(input) = response.at("result.input").and_then(Json::as_str) {
                        println!("counterexample input: {input}");
                    }
                    if let Some(bad) = response.at("result.bad_output").and_then(Json::as_str) {
                        println!("offending output:     {bad}");
                    }
                }
            }
            if let Some(explain) = response.at("result.explain") {
                println!("{}", explain.encode_pretty());
            }
        }
        "stats" => println!("{}", response.encode_pretty()),
        "shutdown" => println!("server shutting down"),
        _ => {}
    }
    if let Some(cache) = response.get("cache") {
        if let Json::Object(fields) = cache {
            let parts: Vec<String> = fields
                .iter()
                .filter(|(_, v)| matches!(v, Json::Str(_)))
                .map(|(k, v)| format!("{k}={}", v.as_str().unwrap_or("?")))
                .collect();
            let hits = cache.get("hits").and_then(Json::as_u64).unwrap_or(0);
            let misses = cache.get("misses").and_then(Json::as_u64).unwrap_or(0);
            let wall = response
                .get("wall_ms")
                .and_then(Json::as_f64)
                .unwrap_or(0.0);
            println!(
                "cache: {} (hits {hits}, misses {misses}) wall {wall:.1}ms",
                parts.join(" ")
            );
        }
    }
    Ok(client_exit_code(response))
}

fn print_verdict(verdict: &DocumentVerdict) -> ExitCode {
    match verdict {
        DocumentVerdict::Ok => {
            println!("typechecks: every valid input maps into the output DTD");
            ExitCode::SUCCESS
        }
        DocumentVerdict::CounterExample { input, bad_output } => {
            println!("DOES NOT typecheck");
            println!("counterexample input: {}", raw_to_xml(input));
            if let Some(bad) = bad_output {
                println!("offending output:     {}", raw_to_xml(bad));
            }
            ExitCode::FAILURE
        }
    }
}

fn two<'a>(rest: &[&'a str]) -> Result<[&'a str; 2], String> {
    match rest {
        [a, b] => Ok([a, b]),
        _ => Err("expected exactly 2 file arguments".into()),
    }
}

fn three<'a>(rest: &[&'a str]) -> Result<[&'a str; 3], String> {
    match rest {
        [a, b, c] => Ok([a, b, c]),
        _ => Err("expected exactly 3 file arguments".into()),
    }
}

const HELP: &str = "\
xmltc — static typechecking for XML transformations
(Milo, Suciu, Vianu: Typechecking for XML Transformers, PODS 2000)

commands:
  validate  <input.dtd> <doc.xml>                dynamic DTD validation
  transform <input.dtd> <sheet.xsl> <doc.xml>    run the transformation
  typecheck <input.dtd> <sheet.xsl> <output.dtd> EXACT static typecheck
  explain   <input.dtd> <sheet.xsl> <output.dtd> typecheck + provenance report
  forward   <input.dtd> <sheet.xsl> <output.dtd> forward-inference baseline
  bench-diff <baseline.json> <candidate.json>    compare benchmark dumps
  bench     --family <name>                      time one seeded instance
                                                 family across thread counts
                                                 (--list for family names)
  corpus    <family> <index>                     regenerate one adversarial
                                                 corpus case and run both
                                                 engines on it (--list for
                                                 the family names)
  serve                                          long-running typecheck service
                                                 (TCP, line-delimited JSON) with
                                                 a content-addressed artifact
                                                 cache
  client    <addr> <command> <files...>          send one request to a running
                                                 xmltc serve

reporting options (validate, transform, typecheck):
  --stats            append a per-phase wall-time / automaton-size table
  --json             emit the machine-readable pipeline report instead
  --trace-out FILE   record the event journal and write a Chrome trace
                     (chrome://tracing / Perfetto): per-thread span tracks
                     plus counter tracks for the hot-loop gauges

typecheck / explain options:
  --explain-out FILE write the verdict-provenance report as JSON (schema
                     xmltc.explain/1): counterexample input, replayed
                     transducer run, offending output, DTD violation;
                     `explain` prints the human form (--json for JSON)
  --route R          Theorem 4.7 route: auto (default) | walk | mso
  --engine E         emptiness engine: auto (default) | lazy | eager
                     (auto = lazy on the walk route, eager on mso)
  --state-limit N    budget for intermediate automata (default 4000000)
  --threads N        walk-route worker threads (default: XMLTC_THREADS if
                     set, else available parallelism; verdict and automata
                     are identical for every N)
  --chunk N          jobs per work-stealing chunk of the walk frontier
                     (default: XMLTC_CHUNK if set, else the measured
                     default; like --threads, cannot change any result)

corpus options:
  --seed S           corpus seed (decimal or 0x-hex; default 0xc0de) — the
                     per-case stream is derived from (seed, family, index)
  --minimize         when the case fails its spec, also print the greedy
                     minimizer's shrunken triple
  --state-limit N    Theorem 4.7 state budget (default 800, matching the
                     harness — exceeding it is a resource skip, exit 0)
  --list             print the family names, one per line

serve options:
  --addr H:P         listen address (default 127.0.0.1:7407; use :0 for an
                     ephemeral port — the bound address is printed)
  --cache-bytes N    artifact-cache byte budget (default 256 MiB); least-
                     recently-used artifacts are evicted past the budget
  --oneshot          serve exactly one connection, then exit (for smoke
                     tests and scripted runs)
  --trace-out FILE   record the event journal for the whole serve run and
                     write a Chrome trace on shutdown
  --json             print the final whole-run report as JSON instead of
                     the table (requests served, cache hits/misses)

client options (typecheck requests accept the typecheck options above,
plus --explain for the provenance report and --id N to tag the request;
--json prints the raw response line):
  xmltc client ADDR validate  <input.dtd> <doc.xml>
  xmltc client ADDR transform <input.dtd> <sheet.xsl> <doc.xml>
  xmltc client ADDR typecheck <input.dtd> <sheet.xsl> <output.dtd>
  xmltc client ADDR stats
  xmltc client ADDR shutdown

bench options:
  --family NAME      the instance family to run (required; --list to name
                     them). walk-scale: seeded walking automata whose
                     Theorem 4.7 frontier saturates — the scaling-curve
                     workload of BENCH_typecheck.json's walk_scaling
  --threads LIST     comma-separated thread counts (default 1,2,4,8;
                     quick: 1,4)
  --reps N           best-of-N timing per point (default 2; quick: 1)
  --quick            smallest instance only (XMLTC_BENCH_QUICK=1 implies)
  --json             emit the curves as JSON (schema xmltc.bench-family/1)

bench-diff options:
  --threshold P=PCT  override the watch threshold of metric path P to PCT
                     percent (repeatable; unknown paths become new
                     lower-is-better watches)
  --advisory         report regressions but exit 0 anyway (for noisy CI)
  --json             emit the diff as JSON (schema xmltc.bench-diff/1)

environment:
  XMLTC_LOG=1        log phase enter/exit to stderr (level + timestamp)
  XMLTC_LOG_FORMAT=json  emit those log lines as JSON objects
  XMLTC_THREADS=N    default walk-route worker threads
  XMLTC_CHUNK=N      default walk-route work-stealing chunk size

formats:
  .dtd   one rule per line:  a := b*.c.e     (first rule = root; // comments)
  .xsl   one template per line:  tag -> body(@apply)
  .xml   element-only XML";
