//! # xmltc — Typechecking for XML Transformers
//!
//! A complete Rust implementation of *Typechecking for XML Transformers*
//! (Milo, Suciu, Vianu; PODS 2000): k-pebble tree transducers, regular
//! tree-language types, and the decidable typechecking pipeline built on
//! inverse type inference.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`trees`] — alphabets, binary/unranked trees, the Figure 1 encoding;
//! * [`regex`] — word regular expressions, NFAs/DFAs, star-free
//!   generalized expressions (Theorem 4.8);
//! * [`automata`] — regular tree languages with full boolean/decision
//!   machinery and witness extraction;
//! * [`dtd`] — DTDs, specialized DTDs, compilation to automata over
//!   encodings, and the grammar decompiler;
//! * [`mso`] — monadic second-order logic on trees compiled to symbolic
//!   tree automata (the Theorem 4.7 engine);
//! * [`core`] — the paper's machine model: k-pebble transducers and
//!   automata, evaluation, Proposition 3.8, the example machines;
//! * [`typecheck`] — the paper's algorithm: Proposition 4.6 products,
//!   Theorem 4.7 both ways, inverse type inference, counterexamples;
//! * [`dsl`] — the declarative machine-spec builder, tree grammars, the
//!   adversarial scenario corpus and the greedy case minimizer;
//! * [`xmlql`] — XSLT-fragment and XML-QL-style front-ends compiled to
//!   pebble transducers, plus the one-call [`xmlql::DocumentPipeline`];
//! * [`xml`] — minimal element-only XML parsing/serialization;
//! * [`obs`] — pipeline observability: phase spans, automaton-size
//!   metrics, and the serializable [`obs::PipelineReport`] behind
//!   `xmltc typecheck --stats` / `--json`;
//! * [`service`] — the `xmltc serve` long-running typecheck service: a
//!   std-only TCP server speaking line-delimited JSON, backed by a
//!   content-addressed artifact cache with single-flight deduplication.
//!
//! Start with the `quickstart` example or the `xmltc` CLI binary; see
//! README.md, DESIGN.md and EXPERIMENTS.md for the full map.

pub use xmltc_automata as automata;
pub use xmltc_bench as bench;
pub use xmltc_core as core;
pub use xmltc_dtd as dtd;
pub use xmltc_mso as mso;
pub use xmltc_obs as obs;
pub use xmltc_regex as regex;
pub use xmltc_service as service;
pub use xmltc_transducer_dsl as dsl;
pub use xmltc_trees as trees;
pub use xmltc_typecheck as typecheck;
pub use xmltc_xml as xml;
pub use xmltc_xmlql as xmlql;
