//! Inverse type inference — the paper's Section 4 punchline, live.
//!
//! Forward type inference is impossible for XML transformers (the image of
//! a regular tree language need not be regular — Examples 4.2/4.3), but the
//! *inverse* type `τ₂⁻¹ = {t | T(t) ⊆ τ₂}` is always regular and
//! computable. This example reproduces the Example 4.2 story at k = 1 using
//! the Example 4.3 query Q2 (`aⁿ ↦ b aⁿ b aⁿ b aⁿ`):
//!
//! with `τ₂` = "even number of children", the inferred inverse type is
//! exactly the *odd*-`a` documents (outputs have 3n+3 children).
//!
//! Run with: `cargo run --example inverse_inference`

use xmltc::dtd::Dtd;
use xmltc::trees::{encode, generate};
use xmltc::typecheck::{inverse_type, TypecheckOptions};
use xmltc::xmlql::xslt::example_q2;

fn main() {
    let q2 = example_q2();
    let input_dtd = Dtd::parse_text("root := a*\na := @eps").unwrap();
    let (t, enc_in, enc_out) = q2.compile(input_dtd.alphabet()).unwrap();
    println!("query Q2 (Example 4.3): root(aⁿ) ↦ result(b aⁿ b aⁿ b aⁿ)");
    println!(
        "compiled: {}-pebble transducer, {} states\n",
        t.k(),
        t.core().n_states()
    );

    // Output type: result's children count is even.
    let tau2 = Dtd::parse_text_with(
        "result := ((a|b).(a|b))*\na := @eps\nb := @eps",
        enc_out.source(),
    )
    .unwrap()
    .compile(&enc_out)
    .unwrap();
    println!("output type τ₂: result := ((a|b).(a|b))*   (even children)");

    // Inverse type inference: Prop 4.6 product + Theorem 4.7 (behaviour
    // route, k = 1) + complementation.
    let inverse = inverse_type(&t, &tau2, &TypecheckOptions::default()).unwrap();
    println!(
        "inferred inverse type τ₂⁻¹: tree automaton with {} states\n",
        inverse.n_states()
    );

    let al = input_dtd.alphabet();
    println!("n  | children of T(aⁿ) | aⁿ ∈ τ₂⁻¹ ?");
    println!("---+-------------------+------------");
    for n in 0..8usize {
        let doc = generate::flat(al.get("root").unwrap(), al.get("a").unwrap(), n, al).unwrap();
        let encoded = encode(&doc, &enc_in).unwrap();
        let inside = inverse.accepts(&encoded).unwrap();
        println!(
            "{n}  | {:>17} | {}",
            3 * n + 3,
            if inside { "yes" } else { "no" }
        );
        assert_eq!(inside, n % 2 == 1);
    }
    println!("\nτ₂⁻¹ ∩ inst(root := a*) = the odd-a documents — inferred, not enumerated.");

    // And render the inferred type as a human-readable grammar: decompile
    // the automaton for τ₂⁻¹ restricted to valid inputs.
    let tau1 = input_dtd.compile(&enc_in).unwrap();
    let restricted = inverse.intersect(&tau1);
    let grammar = xmltc::dtd::decompile(&restricted, &enc_in);
    println!("\ninferred input type, as a specialized DTD:\n{grammar}");
    // Verify the rendering: recompiling the grammar gives the same language.
    let back = grammar.compile().unwrap();
    assert!(back.equivalent(&restricted.trim()));
    println!("(re-compiled and verified equivalent to the inferred automaton)");
}
