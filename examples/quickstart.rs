//! Quickstart: parse an XML document, validate it against a DTD, run an
//! XSLT-fragment transformation compiled to a 1-pebble transducer, and
//! statically typecheck the transformation — including a counterexample
//! when the spec is wrong.
//!
//! Run with: `cargo run --example quickstart`

use xmltc::dtd::Dtd;
use xmltc::trees::{decode, encode};
use xmltc::typecheck::{typecheck, TypecheckOptions, TypecheckOutcome};
use xmltc::xml::{parse_document, raw_to_xml};
use xmltc::xmlql::{Stylesheet, Template};

fn main() {
    // 1. An input schema: catalogs of items, each item holding notes.
    let input_dtd = Dtd::parse_text(
        "catalog := item*
         item := note*
         note := @eps",
    )
    .expect("valid DTD");
    println!("input DTD : catalog := item*; item := note*");

    // 2. An input document, from XML.
    let doc = parse_document(
        "<catalog> <item><note/><note/></item> <item/> </catalog>",
        input_dtd.alphabet(),
    )
    .expect("well-formed XML");
    input_dtd.validate(&doc).expect("valid document");
    println!("document  : {doc}");

    // 3. A transformation: wrap the catalog in a report, one entry per
    //    item, copying nothing else.
    let sheet = Stylesheet::new(vec![
        Template::parse("catalog", "report(header, @apply)").unwrap(),
        Template::parse("item", "entry").unwrap(),
    ]);
    let (transducer, enc_in, enc_out) = sheet.compile(input_dtd.alphabet()).unwrap();
    println!(
        "transducer: k = {} pebbles, {} states",
        transducer.k(),
        transducer.core().n_states()
    );

    // 4. Run it (dynamically) on the document.
    let encoded = encode(&doc, &enc_in).unwrap();
    let output = xmltc::core::eval(&transducer, &encoded).unwrap();
    let decoded = decode(&output, &enc_out).unwrap();
    println!("output    : {}", raw_to_xml(&decoded.to_raw()));

    // 5. Statically typecheck: every valid catalog must map into this
    //    output schema.
    let tau1 = input_dtd.compile(&enc_in).unwrap();
    let good_spec = Dtd::parse_text_with(
        "report := header.entry*
         header := @eps
         entry := @eps",
        enc_out.source(),
    )
    .unwrap()
    .compile(&enc_out)
    .unwrap();
    let verdict = typecheck(&transducer, &tau1, &good_spec, &TypecheckOptions::default())
        .expect("pipeline runs");
    println!(
        "typecheck vs `report := header.entry*`: {}",
        if verdict.is_ok() {
            "OK (holds for ALL valid inputs)"
        } else {
            "FAILED"
        }
    );

    // 6. A wrong spec — at most one entry — yields a counterexample input.
    let wrong_spec = Dtd::parse_text_with(
        "report := header.entry?
         header := @eps
         entry := @eps",
        enc_out.source(),
    )
    .unwrap()
    .compile(&enc_out)
    .unwrap();
    match typecheck(
        &transducer,
        &tau1,
        &wrong_spec,
        &TypecheckOptions::default(),
    )
    .unwrap()
    {
        TypecheckOutcome::CounterExample { input, bad_output } => {
            let cex = decode(&input, &enc_in).unwrap();
            println!("typecheck vs `report := header.entry?`: counterexample found");
            println!("  offending input : {}", raw_to_xml(&cex.to_raw()));
            if let Some(bad) = bad_output {
                let bad_doc = decode(&bad, &enc_out).unwrap();
                println!("  its bad output  : {}", raw_to_xml(&bad_doc.to_raw()));
            }
        }
        TypecheckOutcome::Ok => unreachable!("two items break the spec"),
    }
}
