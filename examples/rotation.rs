//! The Example 3.7 / Figure 2 rotation transducer: re-rooting a tree
//! around its first `s`-labeled leaf — a transformation far beyond
//! top-down transducers, expressed with a single pebble.
//!
//! Also demonstrates the paper's closing remark: on right-linear combs the
//! rotation *reverses a string*.
//!
//! Run with: `cargo run --example rotation`

use xmltc::core::{eval, library};
use xmltc::trees::{Alphabet, BinaryTree};

fn main() {
    // Figure 2's setting: leaves s, x, y; binary symbols; the root tag `r`
    // labels only the root.
    let al = Alphabet::ranked(&["s", "x", "y"], &["r", "f", "g", "s2"]);
    let s0 = al.get("s").unwrap();
    let s2 = al.get("s2").unwrap();
    let r = al.get("r").unwrap();
    let (t, _out_al) = library::rotation(&al, s0, s2, r).unwrap();
    println!(
        "rotation transducer: k = {}, {} states, {} rules\n",
        t.k(),
        t.core().n_states(),
        t.core().n_rules()
    );

    for src in [
        "r(f(s, x), y)",
        "r(f(x, s), y)",
        "r(g(f(x, s), x), f(y, y))",
    ] {
        let input = BinaryTree::parse(src, &al).unwrap();
        let output = eval(&t, &input).unwrap();
        println!("{src}\n  ↦ {output}\n");
    }

    // String reversal: encode "abc" on the spine of a right comb and
    // rotate around the terminating s leaf.
    let al2 = Alphabet::ranked(&["s", "pad"], &["r", "a", "b", "c", "s2"]);
    let (t2, _) = library::rotation(
        &al2,
        al2.get("s").unwrap(),
        al2.get("s2").unwrap(),
        al2.get("r").unwrap(),
    )
    .unwrap();
    let comb = BinaryTree::parse("r(pad, a(pad, b(pad, c(pad, s))))", &al2).unwrap();
    let out = eval(&t2, &comb).unwrap();
    println!("string 'abc' as a comb: {comb}");
    println!("rotated (= reversed)  : {out}");
}
