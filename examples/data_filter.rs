//! Section 5 "Data Values": typechecking a transformation that inspects
//! #PCDATA through unary predicates — decidable via the signature-constant
//! abstraction (one alphabet symbol per realizable predicate signature).
//!
//! A person list is split into adults and minors by an `age ≥ 18` test;
//! the typechecker proves, for EVERY assignment of ages, that the adults
//! list only ever contains adults.
//!
//! Run with: `cargo run --example data_filter`

use xmltc::automata::{Nta, State};
use xmltc::core::data::{abstract_leaves, DataAbstraction, LeafContent, UnaryPredicates};
use xmltc::core::machine::{Guard, Move, SymSpec};
use xmltc::dsl::{MachineSpec, Syms};
use xmltc::trees::{Alphabet, BinaryTree};

fn main() {
    // One predicate: adult(age) = age ≥ 18. Signatures: {0, 1}.
    let base = Alphabet::ranked(&["person", "end"], &["cons"]);
    let mut preds = UnaryPredicates::new();
    preds.add("adult", |age: &i64| *age >= 18);
    let abs = DataAbstraction::build(&base, "person", &preds);
    println!(
        "abstract alphabet: {:?}",
        abs.alphabet()
            .symbols()
            .map(|s| abs.alphabet().name(s).to_string())
            .collect::<Vec<_>>()
    );

    // Output: adults(list) — keep only adults.
    let mut ob = xmltc::trees::AlphabetBuilder::new();
    let al = abs.alphabet();
    for s in al.symbols() {
        ob.add(al.name(s), al.rank(s));
    }
    let out_al = ob.finish();
    let cons = al.get("cons").unwrap();
    let end = al.get("end").unwrap();

    let mut m = MachineSpec::new("adult_filter", 1);
    m.state("walk", 1)
        .state("peek", 1)
        .state("next", 1)
        .initial("walk");
    m.walk(
        Syms::one("cons"),
        "walk",
        Guard::any(),
        Move::DownLeft,
        "peek",
    );
    // Adult: emit cons(value, rest); minor: skip.
    for &sig in abs.data_symbols() {
        let sig_name = al.name(sig).to_string();
        let is_adult = matches!(&abs.sym_if(0, true), SymSpec::AnyOf(v) if v.contains(&sig));
        if is_adult {
            let copy = format!("copy_{sig_name}");
            m.state(&copy, 1);
            m.emit_node(
                Syms::one(&sig_name),
                "peek",
                Guard::any(),
                "cons",
                &copy,
                "next",
            );
            m.emit_leaf(Syms::one(&sig_name), &copy, Guard::any(), &sig_name);
        } else {
            m.walk(
                Syms::one(&sig_name),
                "peek",
                Guard::any(),
                Move::UpLeft,
                "next",
            );
        }
    }
    m.walk(
        Syms::from_symspec(&abs.sym_any_data(), al),
        "next",
        Guard::any(),
        Move::UpLeft,
        "next",
    );
    m.walk(
        Syms::one("cons"),
        "next",
        Guard::any(),
        Move::DownRight,
        "walk",
    );
    m.emit_leaf(Syms::one("end"), "walk", Guard::any(), "end");
    let t = m.build_transducer(al, &out_al).unwrap();

    // τ₁: any person list; τ₂: lists whose every person is an adult.
    let list = |leaves: &[&str]| -> Nta {
        let mut a = Nta::new(&out_al, 2);
        a.add_leaf(out_al.get("end").unwrap(), State(0));
        for n in leaves {
            a.add_leaf(out_al.get(n).unwrap(), State(1));
        }
        a.add_node(out_al.get("cons").unwrap(), State(1), State(0), State(0));
        a.add_final(State(0));
        a
    };
    let tau1 = {
        let mut a = Nta::new(al, 2);
        a.add_leaf(end, State(0));
        for &s in abs.data_symbols() {
            a.add_leaf(s, State(1));
        }
        a.add_node(cons, State(1), State(0), State(0));
        a.add_final(State(0));
        a
    };
    let tau2_adults = list(&["person@1"]);
    let verdict = xmltc::typecheck::typecheck(
        &t,
        &tau1,
        &tau2_adults,
        &xmltc::typecheck::TypecheckOptions::default(),
    )
    .unwrap();
    println!(
        "\n\"the filtered list contains only adults\" — for EVERY age assignment: {}",
        if verdict.is_ok() { "PROVED" } else { "failed" }
    );

    // Run it on a concrete list [25, 7, 40].
    let shape = BinaryTree::parse("cons(person, cons(person, cons(person, end)))", &base).unwrap();
    let person = base.get("person").unwrap();
    let ages = [25i64, 7, 40];
    let mut idx = 0;
    let order: Vec<_> = shape.preorder().collect();
    let mut assigned = std::collections::HashMap::new();
    for &n in &order {
        if shape.symbol(n) == person {
            assigned.insert(n, ages[idx]);
            idx += 1;
        }
    }
    let abstracted = abstract_leaves(&shape, &abs, &preds, |n| match assigned.get(&n) {
        Some(v) => LeafContent::Value(*v),
        None => LeafContent::Symbol(base.name(shape.symbol(n)).to_string()),
    })
    .unwrap();
    let out = xmltc::core::eval(&t, &abstracted).unwrap();
    println!("ages [25, 7, 40] filtered: {out}");
}
