//! Section 5 "Data Values": typechecking a transformation that inspects
//! #PCDATA through unary predicates — decidable via the signature-constant
//! abstraction (one alphabet symbol per realizable predicate signature).
//!
//! A person list is split into adults and minors by an `age ≥ 18` test;
//! the typechecker proves, for EVERY assignment of ages, that the adults
//! list only ever contains adults.
//!
//! Run with: `cargo run --example data_filter`

use xmltc::automata::{Nta, State};
use xmltc::core::data::{abstract_leaves, DataAbstraction, LeafContent, UnaryPredicates};
use xmltc::core::machine::{Guard, Move, SymSpec, TransducerBuilder};
use xmltc::trees::{Alphabet, BinaryTree};

fn main() {
    // One predicate: adult(age) = age ≥ 18. Signatures: {0, 1}.
    let base = Alphabet::ranked(&["person", "end"], &["cons"]);
    let mut preds = UnaryPredicates::new();
    preds.add("adult", |age: &i64| *age >= 18);
    let abs = DataAbstraction::build(&base, "person", &preds);
    println!(
        "abstract alphabet: {:?}",
        abs.alphabet()
            .symbols()
            .map(|s| abs.alphabet().name(s).to_string())
            .collect::<Vec<_>>()
    );

    // Output: adults(list) — keep only adults.
    let mut ob = xmltc::trees::AlphabetBuilder::new();
    let al = abs.alphabet();
    for s in al.symbols() {
        ob.add(al.name(s), al.rank(s));
    }
    let out_al = ob.finish();
    let cons = al.get("cons").unwrap();
    let end = al.get("end").unwrap();

    let mut b = TransducerBuilder::new(al, &out_al, 1);
    let walk = b.state("walk", 1).unwrap();
    let peek = b.state("peek", 1).unwrap();
    let next = b.state("next", 1).unwrap();
    b.set_initial(walk);
    b.move_rule(SymSpec::One(cons), walk, Guard::any(), Move::DownLeft, peek)
        .unwrap();
    // Adult: emit cons(value, rest); minor: skip.
    for &sig in abs.data_symbols() {
        let is_adult = matches!(&abs.sym_if(0, true), SymSpec::AnyOf(v) if v.contains(&sig));
        if is_adult {
            let copy = b.state("copy", 1).unwrap();
            b.output2(SymSpec::One(sig), peek, Guard::any(), cons, copy, next)
                .unwrap();
            b.output0(SymSpec::One(sig), copy, Guard::any(), sig)
                .unwrap();
        } else {
            b.move_rule(SymSpec::One(sig), peek, Guard::any(), Move::UpLeft, next)
                .unwrap();
        }
    }
    b.move_rule(abs.sym_any_data(), next, Guard::any(), Move::UpLeft, next)
        .unwrap();
    b.move_rule(
        SymSpec::One(cons),
        next,
        Guard::any(),
        Move::DownRight,
        walk,
    )
    .unwrap();
    b.output0(SymSpec::One(end), walk, Guard::any(), end)
        .unwrap();
    let t = b.build().unwrap();

    // τ₁: any person list; τ₂: lists whose every person is an adult.
    let list = |leaves: &[&str]| -> Nta {
        let mut a = Nta::new(&out_al, 2);
        a.add_leaf(out_al.get("end").unwrap(), State(0));
        for n in leaves {
            a.add_leaf(out_al.get(n).unwrap(), State(1));
        }
        a.add_node(out_al.get("cons").unwrap(), State(1), State(0), State(0));
        a.add_final(State(0));
        a
    };
    let tau1 = {
        let mut a = Nta::new(al, 2);
        a.add_leaf(end, State(0));
        for &s in abs.data_symbols() {
            a.add_leaf(s, State(1));
        }
        a.add_node(cons, State(1), State(0), State(0));
        a.add_final(State(0));
        a
    };
    let tau2_adults = list(&["person@1"]);
    let verdict = xmltc::typecheck::typecheck(
        &t,
        &tau1,
        &tau2_adults,
        &xmltc::typecheck::TypecheckOptions::default(),
    )
    .unwrap();
    println!(
        "\n\"the filtered list contains only adults\" — for EVERY age assignment: {}",
        if verdict.is_ok() { "PROVED" } else { "failed" }
    );

    // Run it on a concrete list [25, 7, 40].
    let shape = BinaryTree::parse("cons(person, cons(person, cons(person, end)))", &base).unwrap();
    let person = base.get("person").unwrap();
    let ages = [25i64, 7, 40];
    let mut idx = 0;
    let order: Vec<_> = shape.preorder().collect();
    let mut assigned = std::collections::HashMap::new();
    for &n in &order {
        if shape.symbol(n) == person {
            assigned.insert(n, ages[idx]);
            idx += 1;
        }
    }
    let abstracted = abstract_leaves(&shape, &abs, &preds, |n| match assigned.get(&n) {
        Some(v) => LeafContent::Value(*v),
        None => LeafContent::Symbol(base.name(shape.symbol(n)).to_string()),
    })
    .unwrap();
    let out = xmltc::core::eval(&t, &abstracted).unwrap();
    println!("ages [25, 7, 40] filtered: {out}");
}
