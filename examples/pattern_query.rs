//! Example 3.5 live: a hierarchical tree-pattern query compiled to a
//! k-pebble transducer (k = number of pattern variables + 1).
//!
//! Pattern: find every (section, figure) pair where the figure sits
//! anywhere inside the section — the shape of the paper's
//! `p = [a.b*.c]([(a|f).g], …)` patterns, with the extra pebble verifying
//! each regular path condition by climbing from the candidate node and
//! testing pebble presence.
//!
//! Run with: `cargo run --example pattern_query`

use xmltc::regex::Regex;
use xmltc::trees::{decode, encode, Alphabet, RawTree, UnrankedTree};
use xmltc::xmlql::query::{Condition, SelectConstructQuery};

fn main() {
    let al = Alphabet::unranked(&["doc", "sec", "fig", "par"]);
    let doc = al.get("doc").unwrap();
    let sec = al.get("sec").unwrap();
    let fig = al.get("fig").unwrap();
    let par = al.get("par").unwrap();
    let any = Regex::any([sec, fig, par].map(Regex::sym));

    // x₁ : doc.(σ)*.sec       — any section
    // x₂ : sec.(σ)*.fig  @x₁  — any figure inside x₁'s subtree
    let q = SelectConstructQuery::with_pattern(
        &al,
        doc,
        vec![
            Condition {
                parent: None,
                path: Regex::sym(doc)
                    .concat(any.clone().star())
                    .concat(Regex::sym(sec)),
            },
            Condition {
                parent: Some(0),
                path: Regex::sym(sec).concat(any.star()).concat(Regex::sym(fig)),
            },
        ],
        "pairs",
        RawTree::leaf("pair"),
    );
    let (t, enc_in, enc_out) = q.compile().unwrap();
    println!(
        "pattern query compiled: k = {} pebbles ({} variables + checker), {} states\n",
        t.k(),
        q.n_vars(),
        t.core().n_states()
    );

    for src in [
        "doc(sec(fig, par(fig)), fig)",
        "doc(sec(sec(fig)))",
        "doc(par(fig), sec(par))",
    ] {
        let input = UnrankedTree::parse(src, &al).unwrap();
        let encoded = encode(&input, &enc_in).unwrap();
        let out = xmltc::core::eval(&t, &encoded).unwrap();
        let decoded = decode(&out, &enc_out).unwrap();
        println!(
            "{src}\n  ↦ {} (section, figure) pairs\n",
            decoded.children(decoded.root()).len()
        );
    }
    println!("(nested sections count their figures once per enclosing section,");
    println!(" exactly as the lexicographic tuple enumeration of Example 3.5 dictates)");
}
