//! Example 4.2's query Q1 as a compiled 3-pebble transducer:
//! `root(aⁿ) ↦ result(bⁿ²)` — the classic witness that XML transformation
//! images are not regular, so forward type inference cannot be exact.
//!
//! Run with: `cargo run --example q1_query`

use xmltc::core::eval::{self, output_automaton};
use xmltc::dtd::Dtd;
use xmltc::trees::{decode, encode, generate};
use xmltc::xmlql::query::example_q1;

fn main() {
    let (q, al) = example_q1();
    let (t, enc_in, enc_out) = q.compile().unwrap();
    println!(
        "Q1 compiled per Example 3.5: k = {} pebbles (2 variables + 1 checker), {} states\n",
        t.k(),
        t.core().n_states()
    );

    println!("n  | output       | |T(aⁿ)| even-b?");
    println!("---+--------------+----------------");
    let tau2 = Dtd::parse_text_with("result := (b.b)*\nb := @eps", enc_out.source())
        .unwrap()
        .compile(&enc_out)
        .unwrap();
    for n in 0..5usize {
        let doc = generate::flat(al.get("root").unwrap(), al.get("a").unwrap(), n, &al).unwrap();
        let encoded = encode(&doc, &enc_in).unwrap();
        let out = eval::eval(&t, &encoded).unwrap();
        let decoded = decode(&out, &enc_out).unwrap();
        let m = decoded.children(decoded.root()).len();
        // Exact per-input typecheck via the Prop 3.8 output automaton.
        let lang = output_automaton(&t, &encoded).unwrap().to_nta();
        let conforms = lang.intersect(&tau2.complement().to_nta()).is_empty();
        println!(
            "{n}  | result(b^{m:<2}) | {}",
            if conforms { "yes" } else { "no " }
        );
        assert_eq!(m, n * n);
        assert_eq!(conforms, n % 2 == 0);
    }
    println!("\nT(aⁿ) ⊆ (b.b)* exactly when n is even: the inverse type of (b.b)* is (a.a)*.");
}
