//! Integration tests for the `xmltc` binary: exit codes, output shape,
//! and the observability surface (`--stats`, `--json`, `XMLTC_LOG`).

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_xmltc"))
}

fn fixture(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
        .to_str()
        .unwrap()
        .to_string()
}

fn run(args: &[&str]) -> Output {
    bin().args(args).output().expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

fn stderr(out: &Output) -> String {
    String::from_utf8(out.stderr.clone()).expect("utf-8 stderr")
}

#[test]
fn help_exits_zero() {
    let out = run(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(stdout(&out).contains("typecheck"));
    assert!(stdout(&out).contains("--stats"));
    assert!(stdout(&out).contains("--trace-out"));
    assert!(stdout(&out).contains("bench-diff"));
    assert!(stdout(&out).contains("--advisory"));
    assert!(stdout(&out).contains("explain"));
    assert!(stdout(&out).contains("--explain-out"));
    assert!(stdout(&out).contains("XMLTC_LOG_FORMAT"));
}

#[test]
fn no_args_is_usage_error() {
    let out = run(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage"));
}

#[test]
fn unknown_command_is_usage_error() {
    let out = run(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown command"));
}

#[test]
fn missing_file_is_usage_error() {
    let out = run(&["validate", "/nonexistent.dtd", &fixture("doc.xml")]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("cannot read"));
}

#[test]
fn validate_accepts_and_rejects() {
    let out = run(&["validate", &fixture("even_a.dtd"), &fixture("doc.xml")]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert_eq!(stdout(&out), "valid\n");

    // doc.xml has two a's; the DTD root := a? allows at most one... use a
    // stricter DTD: minimal.dtd (root := @eps) rejects children.
    let out = run(&["validate", &fixture("minimal.dtd"), &fixture("doc.xml")]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "alphabet mismatch is an input error"
    );
}

#[test]
fn validate_rejects_invalid_document() {
    // any_a.dtd and even_a.dtd share the alphabet {root, a}; a document
    // with an odd number of a's is valid for one, invalid for the other.
    let dir = std::env::temp_dir().join("xmltc-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let odd = dir.join("odd.xml");
    std::fs::write(&odd, "<root><a/></root>").unwrap();
    let odd = odd.to_str().unwrap().to_string();

    let out = run(&["validate", &fixture("any_a.dtd"), &odd]);
    assert_eq!(out.status.code(), Some(0));
    let out = run(&["validate", &fixture("even_a.dtd"), &odd]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stdout(&out).starts_with("invalid"));
}

#[test]
fn transform_outputs_xml() {
    let out = run(&[
        "transform",
        &fixture("even_a.dtd"),
        &fixture("relabel.xsl"),
        &fixture("doc.xml"),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert_eq!(stdout(&out), "<result><b/><b/></result>\n");
}

#[test]
fn typecheck_passes_on_even_dtd() {
    let out = run(&[
        "typecheck",
        &fixture("even_a.dtd"),
        &fixture("relabel.xsl"),
        &fixture("even_b.dtd"),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    // Byte-exact default output: the observability flags must not change
    // the plain verdict.
    assert_eq!(
        stdout(&out),
        "typechecks: every valid input maps into the output DTD\n"
    );
}

#[test]
fn typecheck_fails_with_counterexample() {
    // The eager engine extracts the smallest counterexample.
    let out = run(&[
        "typecheck",
        &fixture("any_a.dtd"),
        &fixture("relabel.xsl"),
        &fixture("even_b.dtd"),
        "--engine",
        "eager",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let s = stdout(&out);
    assert!(s.contains("DOES NOT typecheck"));
    assert!(s.contains("counterexample input: <root><a/></root>"));
    assert!(s.contains("offending output:     <result><b/></result>"));

    // The default (lazy) engine returns the first accepting configuration
    // its search reaches — valid, deterministic, not necessarily minimal.
    let out = run(&[
        "typecheck",
        &fixture("any_a.dtd"),
        &fixture("relabel.xsl"),
        &fixture("even_b.dtd"),
    ]);
    assert_eq!(out.status.code(), Some(1));
    let s = stdout(&out);
    assert!(s.contains("DOES NOT typecheck"));
    assert!(s.contains("counterexample input: <root>"));
    assert!(s.contains("offending output:     <result>"));
}

/// The human-readable provenance report is golden-pinned byte-for-byte:
/// counterexample input, the replayed transducer run, the offending
/// output, the DTD violation diagnosis, and the replay confirmation.
#[test]
fn explain_human_report_matches_golden() {
    let out = run(&[
        "explain",
        &fixture("any_a.dtd"),
        &fixture("relabel.xsl"),
        &fixture("even_b.dtd"),
        "--engine",
        "eager",
    ]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    let golden = std::fs::read_to_string(fixture("golden/explain_relabel_eager.txt")).unwrap();
    assert_eq!(stdout(&out), golden);
}

/// The JSON provenance report (schema `xmltc.explain/1`) is golden-pinned
/// byte-for-byte and stays parseable with a verified replay.
#[test]
fn explain_json_report_matches_golden() {
    use xmltc::obs::Json;
    let out = run(&[
        "explain",
        &fixture("any_a.dtd"),
        &fixture("relabel.xsl"),
        &fixture("even_b.dtd"),
        "--engine",
        "eager",
        "--json",
    ]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    let s = stdout(&out);
    let golden = std::fs::read_to_string(fixture("golden/explain_relabel_eager.json")).unwrap();
    assert_eq!(s, golden);
    let v = Json::parse(&s).unwrap();
    assert_eq!(
        v.at("schema").and_then(Json::as_str),
        Some("xmltc.explain/1")
    );
    assert_eq!(v.at("replay.verified"), Some(&Json::Bool(true)));
    assert_eq!(
        v.at("violation.production").and_then(Json::as_str),
        Some("result := (b.b)*")
    );
}

#[test]
fn explain_passing_spec_has_nothing_to_explain() {
    let out = run(&[
        "explain",
        &fixture("even_a.dtd"),
        &fixture("relabel.xsl"),
        &fixture("even_b.dtd"),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert_eq!(
        stdout(&out),
        "typechecks (route walk, engine lazy): nothing to explain\n"
    );
}

/// Both engines' counterexamples replay: whatever input/output pair the
/// search reports, the report's replay section must confirm it.
#[test]
fn explain_replay_verifies_for_both_engines() {
    use xmltc::obs::Json;
    for engine in ["lazy", "eager"] {
        let out = run(&[
            "explain",
            &fixture("any_a.dtd"),
            &fixture("relabel.xsl"),
            &fixture("even_b.dtd"),
            "--engine",
            engine,
            "--json",
        ]);
        assert_eq!(out.status.code(), Some(1), "--engine {engine}");
        let v = Json::parse(&stdout(&out)).unwrap();
        assert_eq!(
            v.at("replay.verified"),
            Some(&Json::Bool(true)),
            "--engine {engine}"
        );
        assert_eq!(
            v.at("verdict").and_then(Json::as_str),
            Some("counterexample"),
            "--engine {engine}"
        );
    }
}

#[test]
fn typecheck_explain_out_writes_report_file() {
    use xmltc::obs::Json;
    let dir = std::env::temp_dir().join("xmltc-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let report = dir.join("explain_out.json");
    let out = run(&[
        "typecheck",
        &fixture("any_a.dtd"),
        &fixture("relabel.xsl"),
        &fixture("even_b.dtd"),
        "--engine",
        "eager",
        "--explain-out",
        report.to_str().unwrap(),
    ]);
    // The verdict on stdout is byte-identical to a plain typecheck run;
    // the report lands in the file, the note on stderr.
    assert_eq!(out.status.code(), Some(1));
    let s = stdout(&out);
    assert!(s.contains("DOES NOT typecheck"), "{s}");
    assert!(s.contains("counterexample input: <root><a/></root>"), "{s}");
    assert!(
        stderr(&out).contains("explain report written to"),
        "{}",
        stderr(&out)
    );
    let text = std::fs::read_to_string(&report).unwrap();
    let golden = std::fs::read_to_string(fixture("golden/explain_relabel_eager.json")).unwrap();
    assert_eq!(text, golden);
    let v = Json::parse(&text).unwrap();
    assert_eq!(v.at("replay.verified"), Some(&Json::Bool(true)));

    // On a passing instance the file records the minimal ok report.
    let ok_report = dir.join("explain_ok.json");
    let out = run(&[
        "typecheck",
        &fixture("even_a.dtd"),
        &fixture("relabel.xsl"),
        &fixture("even_b.dtd"),
        "--explain-out",
        ok_report.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0));
    let v = Json::parse(&std::fs::read_to_string(&ok_report).unwrap()).unwrap();
    assert_eq!(v.at("verdict").and_then(Json::as_str), Some("ok"));
    assert!(v.at("input").is_none());
}

#[test]
fn explain_flag_errors() {
    // `--stats`/`--trace-out` belong to typecheck, not explain.
    let out = run(&["explain", "a.dtd", "b.xsl", "c.dtd", "--stats"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--stats"), "{}", stderr(&out));
    // `--explain-out` needs a path, and is a typecheck-level flag.
    let out = run(&["typecheck", "a.dtd", "b.xsl", "c.dtd", "--explain-out"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("--explain-out requires"),
        "{}",
        stderr(&out)
    );
    let out = run(&["validate", "a.dtd", "d.xml", "--explain-out", "x.json"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown flag"), "{}", stderr(&out));
}

#[test]
fn typecheck_stats_appends_phase_table() {
    let out = run(&[
        "typecheck",
        &fixture("even_a.dtd"),
        &fixture("relabel.xsl"),
        &fixture("even_b.dtd"),
        "--stats",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let s = stdout(&out);
    // Verdict line is preserved verbatim, table follows.
    assert!(s.starts_with("typechecks: every valid input maps into the output DTD\n"));
    for needle in [
        "phase",
        "wall_ms",
        "pipeline.compile",
        "input_dtd.compile",
        "typecheck.violation",
        "route.walk",
        "typecheck.emptiness",
        "verdict.ok=1",
    ] {
        assert!(s.contains(needle), "missing `{needle}` in:\n{s}");
    }
}

/// Extracts `"key": value` from the (pretty-printed) JSON report.
fn json_u64(s: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\": ");
    let i = s.find(&pat)? + pat.len();
    let rest = &s[i..];
    let end = rest.find(|c: char| !c.is_ascii_digit())?;
    rest[..end].parse().ok()
}

#[test]
fn typecheck_json_emits_full_report() {
    let out = run(&[
        "typecheck",
        &fixture("even_a.dtd"),
        &fixture("relabel.xsl"),
        &fixture("even_b.dtd"),
        "--json",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let s = stdout(&out);
    assert!(s.contains("\"schema\": \"xmltc.pipeline-report/1\""));
    assert!(s.contains("\"wall_ms\":"));
    for span in [
        "pipeline.compile",
        "input_dtd.compile",
        "output_dtd.compile",
        "typecheck",
        "typecheck.violation",
        "route.walk",
        "typecheck.emptiness",
    ] {
        assert!(
            s.contains(&format!("\"name\": \"{span}\"")),
            "span {span}:\n{s}"
        );
    }
    // Nonzero automaton sizes for the key phases.
    assert!(json_u64(&s, "tau1.states").unwrap() > 0);
    assert!(json_u64(&s, "pebble.states").unwrap() > 0);
    assert!(json_u64(&s, "violation.states").unwrap() > 0);
    assert!(json_u64(&s, "walk.dbta_states").unwrap() > 0);
    assert_eq!(json_u64(&s, "verdict.ok"), Some(1));
    // The walk route defaults to the lazy engine, whose search metrics
    // replace the eager product sizes.
    assert_eq!(json_u64(&s, "engine.lazy"), Some(1));
    assert!(json_u64(&s, "lazy.states_materialized").unwrap() > 0);
    assert!(json_u64(&s, "lazy.states_eager").unwrap() > 0);
    assert!(json_u64(&s, "lazy.worklist_peak").unwrap() > 0);
    assert!(json_u64(&s, "lazy.memo_hits").is_some());
    assert!(json_u64(&s, "lazy.assumption_hits").is_some());
    // Lazy never pays for more states than the eager product holds.
    assert!(
        json_u64(&s, "lazy.states_materialized").unwrap()
            <= json_u64(&s, "lazy.states_eager").unwrap()
    );
}

#[test]
fn typecheck_engine_flag_selects_engine() {
    let base = [
        "typecheck",
        &fixture("even_a.dtd"),
        &fixture("relabel.xsl"),
        &fixture("even_b.dtd"),
    ];
    let expected = "typechecks: every valid input maps into the output DTD\n";
    // Verdict-identical stdout across engines on the plain path.
    for engine in ["auto", "lazy", "eager"] {
        let args: Vec<&str> = base.iter().copied().chain(["--engine", engine]).collect();
        let out = run(&args);
        assert_eq!(out.status.code(), Some(0), "--engine {engine}");
        assert_eq!(stdout(&out), expected, "--engine {engine}");
    }
    // Failing instance: identical verdict either way (counterexamples may
    // differ — lazy returns the first one its search reaches).
    let fail = [
        "typecheck",
        &fixture("any_a.dtd"),
        &fixture("relabel.xsl"),
        &fixture("even_b.dtd"),
    ];
    for engine in ["lazy", "eager"] {
        let args: Vec<&str> = fail.iter().copied().chain(["--engine", engine]).collect();
        let out = run(&args);
        assert_eq!(out.status.code(), Some(1), "--engine {engine}");
        let s = stdout(&out);
        assert!(s.contains("DOES NOT typecheck"), "--engine {engine}");
        assert!(s.contains("counterexample input:"), "--engine {engine}");
    }
}

#[test]
fn typecheck_engine_eager_reports_product_sizes() {
    let out = run(&[
        "typecheck",
        &fixture("even_a.dtd"),
        &fixture("relabel.xsl"),
        &fixture("even_b.dtd"),
        "--json",
        "--engine",
        "eager",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let s = stdout(&out);
    assert_eq!(json_u64(&s, "engine.lazy"), Some(0));
    assert!(json_u64(&s, "intersection.states").unwrap() > 0);
    assert!(json_u64(&s, "lazy.states_materialized").is_none());
}

#[test]
fn typecheck_engine_invalid_value_is_usage_error() {
    let out = run(&[
        "typecheck",
        "a.dtd",
        "b.xsl",
        "c.dtd",
        "--engine",
        "sideways",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown engine"));
    let out = run(&["typecheck", "a.dtd", "b.xsl", "c.dtd", "--engine"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--engine requires"));
}

#[test]
fn typecheck_json_mso_route_propagates_compile_stats() {
    let out = run(&[
        "typecheck",
        &fixture("minimal.dtd"),
        &fixture("minimal.xsl"),
        &fixture("minimal_out.dtd"),
        "--json",
        "--route",
        "mso",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let s = stdout(&out);
    assert!(s.contains("\"name\": \"route.mso\""), "{s}");
    // The MSO compiler's CompileStats must land in the report (these were
    // previously discarded by the typechecker).
    assert!(json_u64(&s, "mso.operations").unwrap() > 0);
    assert!(json_u64(&s, "mso.determinizations").unwrap() > 0);
    assert!(json_u64(&s, "mso.max_states").unwrap() > 0);
    assert!(json_u64(&s, "mso.peak_subset_frontier").unwrap() > 0);
}

#[test]
fn typecheck_mso_budget_abort_reports_partial_progress() {
    let out = run(&[
        "typecheck",
        &fixture("minimal.dtd"),
        &fixture("minimal.xsl"),
        &fixture("minimal_out.dtd"),
        "--stats",
        "--route",
        "mso",
        "--state-limit",
        "1",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("exceeded 1 states"));
    // The partial report still made it out, with the stats so far.
    let s = stdout(&out);
    assert!(s.contains("route.mso"), "{s}");
    assert!(s.contains("mso.operations="), "{s}");
}

#[test]
fn typecheck_route_walk_is_explicit_default_for_k1() {
    let out = run(&[
        "typecheck",
        &fixture("even_a.dtd"),
        &fixture("relabel.xsl"),
        &fixture("even_b.dtd"),
        "--route",
        "walk",
    ]);
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(
        stdout(&out),
        "typechecks: every valid input maps into the output DTD\n"
    );
}

#[test]
fn unknown_flag_is_usage_error() {
    let out = run(&[
        "typecheck",
        &fixture("even_a.dtd"),
        &fixture("relabel.xsl"),
        &fixture("even_b.dtd"),
        "--frobnicate",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown flag"));

    // Pipeline flags are rejected on the reporting-only commands...
    let out = run(&[
        "validate",
        &fixture("even_a.dtd"),
        &fixture("doc.xml"),
        "--route",
        "walk",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown flag"));
    // ...and every flag is rejected on `forward`, which takes none.
    let out = run(&[
        "forward",
        &fixture("even_a.dtd"),
        &fixture("relabel.xsl"),
        &fixture("even_b.dtd"),
        "--stats",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown flag"));
}

#[test]
fn bad_flag_values_are_usage_errors() {
    let base = [
        "typecheck",
        // Paths resolved lazily — flag errors must win first.
        "a.dtd",
        "b.xsl",
        "c.dtd",
    ];
    let out = run(&[&base[..], &["--route", "sideways"]].concat());
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown route"));
    let out = run(&[&base[..], &["--state-limit", "many"]].concat());
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("invalid state limit"));
    let out = run(&[&base[..], &["--route"]].concat());
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--route requires"));
}

#[test]
fn forward_baseline_exit_codes() {
    // relabel is a per-tag homomorphism, so forward inference is exact on
    // even_a: the image of (a.a)* is (b.b)* and the spec is proved.
    let out = run(&[
        "forward",
        &fixture("even_a.dtd"),
        &fixture("relabel.xsl"),
        &fixture("even_b.dtd"),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stdout(&out).contains("proves the spec"));

    // Under any_a the image is b*, which leaks outside (b.b)*.
    let out = run(&[
        "forward",
        &fixture("any_a.dtd"),
        &fixture("relabel.xsl"),
        &fixture("even_b.dtd"),
    ]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    assert!(stdout(&out).contains("cannot prove"));
    assert!(stdout(&out).contains("image witness"));
}

#[test]
fn xmltc_log_traces_to_stderr() {
    let out = bin()
        .args([
            "typecheck",
            &fixture("even_a.dtd"),
            &fixture("relabel.xsl"),
            &fixture("even_b.dtd"),
        ])
        .env("XMLTC_LOG", "1")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
    let err = stderr(&out);
    // Structured prefix: `[xmltc +SECONDS s LEVEL]` then the span arrows.
    assert!(err.contains("[xmltc +"), "{err}");
    assert!(err.contains("info] -> typecheck"), "{err}");
    assert!(err.contains("<- typecheck"), "{err}");
    // Every log line carries the level and a monotonic timestamp.
    let mut last_ts = 0.0f64;
    for line in err.lines().filter(|l| l.starts_with("[xmltc +")) {
        assert!(line.contains(" info] "), "level missing: {line}");
        let ts: f64 = line["[xmltc +".len()..line.find('s').unwrap()]
            .parse()
            .unwrap_or_else(|_| panic!("bad timestamp: {line}"));
        assert!(ts >= last_ts, "timestamps not monotonic: {err}");
        last_ts = ts;
    }
    // And stdout stays byte-identical.
    assert_eq!(
        stdout(&out),
        "typechecks: every valid input maps into the output DTD\n"
    );
}

#[test]
fn xmltc_log_format_json_emits_json_lines() {
    use xmltc::obs::Json;
    let out = bin()
        .args([
            "typecheck",
            &fixture("even_a.dtd"),
            &fixture("relabel.xsl"),
            &fixture("even_b.dtd"),
        ])
        .env("XMLTC_LOG", "1")
        .env("XMLTC_LOG_FORMAT", "json")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
    let err = stderr(&out);
    // Every log line is one JSON object with the structured fields.
    let lines: Vec<&str> = err.lines().filter(|l| l.starts_with('{')).collect();
    assert!(!lines.is_empty(), "no JSON log lines in:\n{err}");
    let mut saw_enter = false;
    let mut saw_exit = false;
    for line in &lines {
        let v = Json::parse(line).unwrap_or_else(|e| panic!("bad log line `{line}`: {e}"));
        assert!(v.at("ts").and_then(Json::as_f64).is_some(), "{line}");
        assert_eq!(v.at("level").and_then(Json::as_str), Some("info"), "{line}");
        assert!(v.at("span").and_then(Json::as_str).is_some(), "{line}");
        match v.at("event").and_then(Json::as_str) {
            Some("enter") => saw_enter = true,
            Some("exit") => {
                saw_exit = true;
                assert!(v.at("wall_ms").and_then(Json::as_f64).is_some(), "{line}");
            }
            other => panic!("unexpected event {other:?} in {line}"),
        }
    }
    assert!(saw_enter && saw_exit);
    assert!(
        lines.iter().any(|l| l.contains("\"span\":\"typecheck\"")),
        "{err}"
    );
    assert_eq!(
        stdout(&out),
        "typechecks: every valid input maps into the output DTD\n"
    );
}

#[test]
fn typecheck_threads_flag_is_output_invariant() {
    // Verdict and every byte of output must be identical at any thread
    // count, on both passing and failing instances.
    for (out_dtd, code) in [("even_b.dtd", 0), ("universal_out.dtd", 0)] {
        let base = [
            "typecheck",
            &fixture("even_a.dtd"),
            &fixture("relabel.xsl"),
            &fixture(out_dtd),
        ];
        let one: Vec<&str> = base.iter().copied().chain(["--threads", "1"]).collect();
        let four: Vec<&str> = base.iter().copied().chain(["--threads", "4"]).collect();
        let o1 = run(&one);
        let o4 = run(&four);
        assert_eq!(o1.status.code(), Some(code), "{}", stderr(&o1));
        assert_eq!(o4.status.code(), Some(code), "{}", stderr(&o4));
        assert_eq!(stdout(&o1), stdout(&o4), "--threads changed the output");
    }
    let fail = [
        "typecheck",
        &fixture("any_a.dtd"),
        &fixture("relabel.xsl"),
        &fixture("even_b.dtd"),
    ];
    let one: Vec<&str> = fail.iter().copied().chain(["--threads", "1"]).collect();
    let four: Vec<&str> = fail.iter().copied().chain(["--threads", "4"]).collect();
    let o1 = run(&one);
    let o4 = run(&four);
    assert_eq!(o1.status.code(), Some(1));
    assert_eq!(o4.status.code(), Some(1));
    assert_eq!(
        stdout(&o1),
        stdout(&o4),
        "--threads changed the counterexample"
    );
}

#[test]
fn typecheck_json_reports_thread_count() {
    let out = run(&[
        "typecheck",
        &fixture("even_a.dtd"),
        &fixture("relabel.xsl"),
        &fixture("even_b.dtd"),
        "--json",
        "--threads",
        "2",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let s = stdout(&out);
    assert_eq!(json_u64(&s, "walk.threads"), Some(2));
    assert!(json_u64(&s, "walk.pairs").unwrap() > 0);
    assert!(json_u64(&s, "walk.compositions").unwrap() > 0);
    assert!(json_u64(&s, "walk.memo_hits").is_some());
    assert!(json_u64(&s, "walk.fixpoint_steps").unwrap() > 0);
    assert!(json_u64(&s, "product.pairs_pruned").is_some());
}

#[test]
fn xmltc_threads_env_sets_default_and_flag_wins() {
    let args = [
        "typecheck",
        &fixture("even_a.dtd"),
        &fixture("relabel.xsl"),
        &fixture("even_b.dtd"),
        "--json",
    ];
    let out = bin()
        .args(args)
        .env("XMLTC_THREADS", "3")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert_eq!(json_u64(&stdout(&out), "walk.threads"), Some(3));

    let with_flag: Vec<&str> = args.iter().copied().chain(["--threads", "1"]).collect();
    let out = bin()
        .args(&with_flag)
        .env("XMLTC_THREADS", "3")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert_eq!(json_u64(&stdout(&out), "walk.threads"), Some(1));
}

#[test]
fn typecheck_rejects_invalid_thread_count() {
    for bad in ["0", "-1", "many"] {
        let out = run(&[
            "typecheck",
            &fixture("even_a.dtd"),
            &fixture("relabel.xsl"),
            &fixture("even_b.dtd"),
            "--threads",
            bad,
        ]);
        assert_eq!(out.status.code(), Some(2), "--threads {bad}");
        assert!(
            stderr(&out).contains("invalid thread count"),
            "--threads {bad}: {}",
            stderr(&out)
        );
    }
}

#[test]
fn typecheck_chunk_flag_is_output_invariant_and_reported() {
    let base = [
        "typecheck",
        &fixture("even_a.dtd"),
        &fixture("relabel.xsl"),
        &fixture("even_b.dtd"),
    ];
    let plain = run(&base);
    let chunked: Vec<&str> = base.iter().copied().chain(["--chunk", "2"]).collect();
    let out = run(&chunked);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert_eq!(stdout(&plain), stdout(&out), "--chunk changed the output");
    let json: Vec<&str> = chunked.iter().copied().chain(["--json"]).collect();
    let out = run(&json);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert_eq!(json_u64(&stdout(&out), "walk.kernel.chunk_size"), Some(2));
    for bad in ["0", "huge"] {
        let out = run(&[&base[..], &["--chunk", bad]].concat());
        assert_eq!(out.status.code(), Some(2), "--chunk {bad}");
        assert!(stderr(&out).contains("invalid chunk size"));
    }
}

#[test]
fn bench_list_and_usage_errors() {
    let out = run(&["bench", "--list"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert_eq!(stdout(&out).trim(), "walk-scale");
    let out = run(&["bench"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--family"), "{}", stderr(&out));
    let out = run(&["bench", "--family", "nope"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown bench family"));
    let out = run(&["bench", "--family", "walk-scale", "--threads", "0"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("invalid thread count"));
}

#[test]
fn bench_family_quick_emits_curves() {
    // Quick mode keeps only the smallest instance; one thread count and
    // one rep keep the debug-build run affordable.
    let out = run(&[
        "bench",
        "--family",
        "walk-scale",
        "--quick",
        "--threads",
        "1",
        "--reps",
        "1",
        "--json",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let s = stdout(&out);
    assert!(
        s.contains("xmltc.bench-family/1"),
        "schema tag missing: {s}"
    );
    assert!(s.contains("ws-128"), "quick roster instance missing: {s}");
    // `bench --json` emits the compact encoding (no space after the
    // colon), unlike the pipeline reports `json_u64` targets.
    let jobs: Option<u64> = s.split("\"jobs\":").nth(1).and_then(|rest| {
        let end = rest.find(|c: char| !c.is_ascii_digit())?;
        rest[..end].parse().ok()
    });
    assert!(
        jobs.is_some_and(|j| j > 1_000),
        "scaled frontier must stay saturated: {s}"
    );
}

#[test]
fn validate_stats_and_json_report_phases() {
    let base = ["validate", &fixture("even_a.dtd"), &fixture("doc.xml")];
    let out = run(&base.iter().copied().chain(["--stats"]).collect::<Vec<_>>());
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let s = stdout(&out);
    assert!(s.starts_with("valid\n"), "{s}");
    for needle in ["dtd.parse", "doc.parse", "dtd.validate", "verdict.ok=1"] {
        assert!(s.contains(needle), "missing `{needle}` in:\n{s}");
    }

    let out = run(&base.iter().copied().chain(["--json"]).collect::<Vec<_>>());
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let s = stdout(&out);
    assert!(s.contains("\"schema\": \"xmltc.pipeline-report/1\""));
    assert!(s.contains("\"name\": \"dtd.validate\""));
    assert_eq!(json_u64(&s, "verdict.ok"), Some(1));
    // JSON replaces the plain verdict line.
    assert!(!s.contains("valid\n"), "{s}");

    // An invalid document keeps its exit code under --json, and the
    // verdict lands in the report instead of the (suppressed) text.
    let dir = std::env::temp_dir().join("xmltc-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let odd = dir.join("odd_report.xml");
    std::fs::write(&odd, "<root><a/></root>").unwrap();
    let out = run(&[
        "validate",
        &fixture("even_a.dtd"),
        odd.to_str().unwrap(),
        "--json",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let s = stdout(&out);
    assert_eq!(json_u64(&s, "verdict.ok"), Some(0));
    assert!(!s.contains("invalid:"), "{s}");
}

#[test]
fn transform_stats_and_json_report_phases() {
    let base = [
        "transform",
        &fixture("even_a.dtd"),
        &fixture("relabel.xsl"),
        &fixture("doc.xml"),
    ];
    let out = run(&base.iter().copied().chain(["--stats"]).collect::<Vec<_>>());
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let s = stdout(&out);
    assert!(s.starts_with("<result><b/><b/></result>\n"), "{s}");
    for needle in ["dtd.parse", "sheet.parse", "doc.parse"] {
        assert!(s.contains(needle), "missing `{needle}` in:\n{s}");
    }

    let out = run(&base.iter().copied().chain(["--json"]).collect::<Vec<_>>());
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let s = stdout(&out);
    assert!(s.contains("\"schema\": \"xmltc.pipeline-report/1\""));
    assert!(s.contains("\"name\": \"sheet.parse\""));
    assert!(!s.contains("<result>"), "JSON replaces the document:\n{s}");
}

/// The headline acceptance check: tracing a parallel typecheck of the
/// Example 4.3 (Q2) pipeline yields a valid Chrome trace with one track
/// per worker and counter tracks for the hot-loop gauges.
#[test]
fn typecheck_trace_out_writes_chrome_trace() {
    use xmltc::obs::Json;
    let dir = std::env::temp_dir().join("xmltc-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("q2_trace.json");
    let trace_path = trace.to_str().unwrap().to_string();
    // Q2's frontier batches sit below the job-count gate, so worker crews
    // would not spawn at the default threshold; force the parallel path —
    // the per-worker tracks are exactly what this test pins.
    let out = bin()
        .args([
            "typecheck",
            &fixture("q2.dtd"),
            &fixture("q2.xsl"),
            &fixture("q2_mod3_out.dtd"),
            "--route",
            "walk",
            "--threads",
            "4",
            "--trace-out",
            &trace_path,
        ])
        .env("XMLTC_PAR_THRESHOLD", "1")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    // The verdict on stdout is untouched; the trace note goes to stderr.
    assert_eq!(
        stdout(&out),
        "typechecks: every valid input maps into the output DTD\n"
    );
    assert!(
        stderr(&out).contains("trace written to"),
        "{}",
        stderr(&out)
    );

    let text = std::fs::read_to_string(&trace).expect("trace file written");
    let doc = Json::parse(&text).expect("trace is valid JSON");
    assert_eq!(doc.at("displayTimeUnit").and_then(Json::as_str), Some("ms"));
    let Some(Json::Array(events)) = doc.at("traceEvents") else {
        panic!("traceEvents array");
    };
    assert!(!events.is_empty());

    let with_ph = |ph: &'static str| {
        events
            .iter()
            .filter(move |e| e.at("ph").and_then(Json::as_str) == Some(ph))
    };
    // One merged display track per worker name, plus the main thread.
    let tracks: Vec<&str> = with_ph("M")
        .filter_map(|e| e.at("args.name").and_then(Json::as_str))
        .collect();
    assert!(tracks.contains(&"main"), "{tracks:?}");
    for w in 0..4 {
        let name = format!("walk-worker-{w}");
        assert!(tracks.contains(&name.as_str()), "{tracks:?}");
    }
    // Counter tracks for the hot-loop gauges, each sample carrying a value.
    let counters: Vec<&str> = with_ph("C")
        .filter_map(|e| e.at("name").and_then(Json::as_str))
        .collect();
    for gauge in [
        "walk.jobs_remaining",
        "walk.frontier_jobs",
        "walk.memo_hits",
        "walk.memo_misses",
        "lazy.states_materialized",
    ] {
        assert!(counters.contains(&gauge), "missing counter `{gauge}`");
    }
    assert!(with_ph("C").all(|e| e.at("args.value").and_then(Json::as_u64).is_some()));
    // Worker spans open and close in matched pairs.
    let span_count = |ph: &'static str| {
        with_ph(ph)
            .filter(|e| e.at("name").and_then(Json::as_str) == Some("walk.worker"))
            .count()
    };
    assert!(span_count("B") > 0);
    assert_eq!(span_count("B"), span_count("E"));
    // Every frontier round dropped an instant marker.
    assert!(with_ph("i").any(|e| e.at("name").and_then(Json::as_str) == Some("walk.round")));
}

#[test]
fn validate_trace_out_records_phase_spans() {
    use xmltc::obs::Json;
    let dir = std::env::temp_dir().join("xmltc-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("validate_trace.json");
    let out = run(&[
        "validate",
        &fixture("even_a.dtd"),
        &fixture("doc.xml"),
        "--trace-out",
        trace.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert_eq!(stdout(&out), "valid\n");
    let doc = Json::parse(&std::fs::read_to_string(&trace).unwrap()).unwrap();
    let Some(Json::Array(events)) = doc.at("traceEvents") else {
        panic!("traceEvents array");
    };
    let begins: Vec<&str> = events
        .iter()
        .filter(|e| e.at("ph").and_then(Json::as_str) == Some("B"))
        .filter_map(|e| e.at("name").and_then(Json::as_str))
        .collect();
    for span in ["dtd.parse", "doc.parse", "dtd.validate"] {
        assert!(
            begins.contains(&span),
            "missing span `{span}` in {begins:?}"
        );
    }
}

#[test]
fn bench_diff_exit_codes() {
    let dir = std::env::temp_dir().join("xmltc-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let write = |name: &str, text: &str| {
        let p = dir.join(name);
        std::fs::write(&p, text).unwrap();
        p.to_str().unwrap().to_string()
    };
    let base = write(
        "bd_base.json",
        r#"{"route_walk":{"pairs":100,"memo_hit_rate":0.5}}"#,
    );
    let same = write(
        "bd_same.json",
        r#"{"route_walk":{"pairs":100,"memo_hit_rate":0.5}}"#,
    );
    let worse = write(
        "bd_worse.json",
        r#"{"route_walk":{"pairs":101,"memo_hit_rate":0.5}}"#,
    );

    // Identical dumps: no regression.
    let out = run(&["bench-diff", &base, &same]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stdout(&out).contains("route_walk.pairs"));

    // A counter crept up past its zero-tolerance threshold: exit 1.
    let out = run(&["bench-diff", &base, &worse]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stderr(&out).contains("1 watched metric regressed beyond threshold"),
        "{}",
        stderr(&out)
    );

    // Advisory mode reports but does not fail.
    let out = run(&["bench-diff", &base, &worse, "--advisory"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(stderr(&out).contains("advisory mode"), "{}", stderr(&out));

    // A loosened threshold absorbs the +1% drift.
    let out = run(&[
        "bench-diff",
        &base,
        &worse,
        "--threshold",
        "route_walk.pairs=5",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));

    // --json emits the machine-readable diff.
    let out = run(&["bench-diff", &base, &worse, "--json", "--advisory"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(stdout(&out).contains("xmltc.bench-diff/1"));
    assert!(xmltc::obs::Json::parse(&stdout(&out)).is_ok());

    // Unreadable input, bad flags, and wrong arity are usage errors.
    let garbage = write("bd_garbage.json", "not json");
    let out = run(&["bench-diff", &base, &garbage]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("cannot parse"), "{}", stderr(&out));
    let out = run(&["bench-diff", &base, &same, "--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["bench-diff", &base]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["bench-diff", &base, &same, "--threshold", "pairs"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("invalid threshold"),
        "{}",
        stderr(&out)
    );
}

/// The committed baseline must self-diff clean: `bench-diff` against the
/// very same file is the CI job's degenerate case and must stay green.
#[test]
fn bench_diff_committed_baseline_self_diffs_clean() {
    let baseline = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("BENCH_typecheck.json");
    let baseline = baseline.to_str().unwrap();
    let out = run(&["bench-diff", baseline, baseline]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let s = stdout(&out);
    // Every default watch resolves against the committed schema.
    assert!(!s.contains("(missing)"), "stale watch paths:\n{s}");
}

/// `xmltc corpus --list` prints the adversarial family names.
#[test]
fn corpus_lists_families() {
    let out = run(&["corpus", "--list"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let s = stdout(&out);
    for family in [
        "silent-chains",
        "deep-nesting",
        "near-empty",
        "near-universal",
        "single-symbol",
        "dead-states",
    ] {
        assert!(s.contains(family), "missing family {family}:\n{s}");
    }
}

/// Regenerating a corpus case prints the triple, runs both engines, and
/// exits 0 when they agree — for every family at index 0.
#[test]
fn corpus_regenerates_and_runs_both_engines() {
    for family in [
        "silent-chains",
        "deep-nesting",
        "near-empty",
        "near-universal",
        "single-symbol",
        "dead-states",
    ] {
        let out = run(&["corpus", family, "0"]);
        assert_eq!(out.status.code(), Some(0), "{family}: {}", stderr(&out));
        let s = stdout(&out);
        assert!(s.contains(&format!("case family={family} index=0")), "{s}");
        assert!(s.contains("machine"), "{s}");
        assert!(s.contains("grammar tau1"), "{s}");
        assert!(s.contains("grammar tau2"), "{s}");
        assert!(s.contains("digest: 0x"), "{s}");
        assert!(s.contains("eager: "), "{s}");
        assert!(s.contains("lazy:  "), "{s}");
        assert!(s.contains("engines agree"), "{s}");
    }
}

/// The same (family, index, seed) prints the same case twice — the CLI is
/// a replay tool, so determinism is the whole point.
#[test]
fn corpus_is_deterministic_and_seed_sensitive() {
    let a = run(&["corpus", "silent-chains", "3"]);
    let b = run(&["corpus", "silent-chains", "3"]);
    assert_eq!(stdout(&a), stdout(&b));
    // An explicit --seed switches the stream (0xc0de is the default).
    let c = run(&["corpus", "silent-chains", "3", "--seed", "0xc0de"]);
    assert_eq!(stdout(&a), stdout(&c));
    let d = run(&["corpus", "silent-chains", "3", "--seed", "7"]);
    assert_ne!(stdout(&a), stdout(&d));
}

/// `--minimize` on a failing case prints a shrunken triple that still
/// renders as a full scenario.
#[test]
fn corpus_minimize_prints_shrunken_triple() {
    // near-empty #1 under the default seed fails its spec (pinned by the
    // golden digests; if the generator changes, pick a new failing index).
    let out = run(&["corpus", "near-empty", "1", "--minimize"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let s = stdout(&out);
    assert!(s.contains("eager: counterexample"), "{s}");
    assert!(
        s.contains("minimized while preserving the counterexample"),
        "{s}"
    );
    let shrunk = s.split("minimized while preserving").nth(1).unwrap();
    assert!(shrunk.contains("machine"), "{s}");
    assert!(shrunk.contains("grammar tau2"), "{s}");
}

/// Bad family names, indices, and seeds are usage errors.
#[test]
fn corpus_rejects_bad_arguments() {
    let out = run(&["corpus", "no-such-family", "0"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown family"), "{}", stderr(&out));
    let out = run(&["corpus", "near-empty", "x"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("invalid case index"),
        "{}",
        stderr(&out)
    );
    let out = run(&["corpus", "near-empty", "0", "--seed", "zz"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("invalid seed"), "{}", stderr(&out));
    let out = run(&["corpus", "near-empty"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["corpus", "near-empty", "0", "--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["corpus", "near-empty", "0", "--state-limit", "zz"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("invalid state limit"),
        "{}",
        stderr(&out)
    );
}

/// Full service round-trip through the real binary: spawn `xmltc serve`,
/// run the same `xmltc client typecheck` twice, and require the warm
/// response to come from the artifact cache — verdict byte-identical to
/// the cold one, `cache.verdict=hit`, and zero walk-construction metrics.
#[test]
fn serve_client_round_trip_hits_artifact_cache() {
    use std::io::{BufRead, BufReader};
    use std::process::Stdio;
    use xmltc::obs::Json;

    let mut server = bin()
        .args(["serve", "--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("serve spawns");
    // The serve command prints (and flushes) this exact line once bound.
    let mut lines = BufReader::new(server.stdout.take().unwrap()).lines();
    let banner = lines.next().expect("banner line").unwrap();
    let addr = banner
        .strip_prefix("xmltc serve: listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
        .to_string();

    let typecheck = |name: &str| -> Json {
        let out = run(&[
            "client",
            &addr,
            "typecheck",
            &fixture("even_a.dtd"),
            &fixture("relabel.xsl"),
            &fixture("even_b.dtd"),
            "--json",
        ]);
        assert_eq!(out.status.code(), Some(0), "{name}: {}", stderr(&out));
        Json::parse(stdout(&out).trim()).expect("response is one JSON line")
    };
    let cold = typecheck("cold");
    let warm = typecheck("warm");
    for resp in [&cold, &warm] {
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(
            resp.at("result.verdict").and_then(Json::as_str),
            Some("typechecks")
        );
    }
    // Cold run built the verdict; warm run must be a pure cache hit.
    assert_eq!(
        cold.at("cache.verdict").and_then(Json::as_str),
        Some("miss")
    );
    assert_eq!(warm.at("cache.verdict").and_then(Json::as_str), Some("hit"));
    assert!(warm.at("cache.hits").and_then(Json::as_u64).unwrap() >= 1);
    // The deterministic verdict payload is byte-identical across runs.
    assert_eq!(
        cold.get("result").unwrap().encode(),
        warm.get("result").unwrap().encode()
    );
    // Zero construction work on the warm path: no walk/mso metrics.
    let warm_metrics = warm.get("metrics").unwrap().encode();
    assert!(!warm_metrics.contains("walk."), "{warm_metrics}");
    assert!(!warm_metrics.contains("mso."), "{warm_metrics}");

    // Human rendering of the warm response surfaces the cache line.
    let out = run(&[
        "client",
        &addr,
        "typecheck",
        &fixture("even_a.dtd"),
        &fixture("relabel.xsl"),
        &fixture("even_b.dtd"),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let s = stdout(&out);
    assert!(
        s.starts_with("typechecks: every valid input maps into the output DTD\n"),
        "{s}"
    );
    assert!(s.contains("cache: verdict=hit"), "{s}");

    // Negative verdicts keep their local exit code through the wire.
    let out = run(&[
        "client",
        &addr,
        "typecheck",
        &fixture("any_a.dtd"),
        &fixture("relabel.xsl"),
        &fixture("even_b.dtd"),
    ]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    assert!(
        stdout(&out).contains("DOES NOT typecheck"),
        "{}",
        stdout(&out)
    );

    // Shutdown flushes the final report table from the server process.
    let out = run(&["client", &addr, "shutdown"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stdout(&out).contains("server shutting down"));
    let status = server.wait().expect("server exits");
    assert!(status.success());
    let rest: Vec<String> = lines.map(|l| l.unwrap()).collect();
    let table = rest.join("\n");
    for needle in ["serve.requests", "cache.hits", "cache.misses"] {
        assert!(table.contains(needle), "missing `{needle}` in:\n{table}");
    }
}

/// An un-runnable state budget turns the verdict into an explicit
/// "resource skip" (exit 0, mirroring the harness) instead of an error —
/// and the default budget runs the same case to an actual verdict.
#[test]
fn corpus_state_limit_reports_resource_skip() {
    let out = run(&["corpus", "silent-chains", "3", "--state-limit", "1"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("resource skip: state budget exceeded"),
        "{text}"
    );
    assert!(text.contains("raise with --state-limit"), "{text}");
    // The same case under the default budget reaches a real verdict.
    let out = run(&["corpus", "silent-chains", "3"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stdout(&out).contains("engines agree"), "{}", stdout(&out));
}
