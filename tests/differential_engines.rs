//! Differential validation of the emptiness engines: the lazy on-the-fly
//! search and the eager materializing procedure must return identical
//! verdicts on every instance, and `typecheck::bounded` (exhaustive up to
//! its depth bound) must never contradict either. Every counterexample an
//! engine emits is independently re-verified against `τ₂`.
//!
//! Seeded random (input DTD, transducer, output DTD) triples drawn from
//! the in-tree [`SmallRng`]. The Theorem 4.7 walk construction depends
//! only on (transducer, output DTD), so its (expensive, engine-independent)
//! violation automaton is computed once per such pair and shared by both
//! engines — the engines then race on the final emptiness check, which is
//! where they actually differ. Case count and seed are overridable for the
//! CI nightly-style run:
//!
//! ```text
//! XMLTC_DIFF_CASES=1000 XMLTC_DIFF_SEED=7 cargo test --test differential_engines
//! ```

use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use xmltc::automata::{lazy, Nta};
use xmltc::dsl::{generate, minimize_scenario, Family, Scenario, CORPUS_STATE_LIMIT, FAMILIES};
use xmltc::dtd::Dtd;
use xmltc::obs::{DocumentRecord, ExplainReport, ReplayRecord, TraceStepRecord, TransformRecord};
use xmltc::trees::{BinaryTree, SmallRng};
use xmltc::typecheck::bounded::{bounded_typecheck, BoundedOutcome};
use xmltc::typecheck::check::{extract_bad_output, extract_bad_output_with};
use xmltc::typecheck::differential::differential_emptiness;
use xmltc::typecheck::inverse::violation_nta;
use xmltc::typecheck::{
    replay_counterexample, Engine, ReplayEvidence, TypecheckError, TypecheckOptions,
};
use xmltc::xmlql::{Stylesheet, Template};

/// Input DTDs (the `τ₁` pool). All share the tag set `{root, a}` so any
/// stylesheet below compiles against them.
const INPUT_DTDS: [&str; 5] = [
    "root := a*\na := a*",
    "root := a.a*\na := a*",
    "root := a?\na := a?",
    "root := (a.a)*\na := a*",
    "root := a*\na := @eps",
];

/// Template bodies for the `root` tag.
const ROOT_BODIES: [&str; 4] = [
    "out(@apply)",
    "out(b, @apply)",
    "out(@apply, @apply)",
    "out",
];

/// Template bodies for the `a` tag.
const A_BODIES: [&str; 4] = ["a", "b", "a(@apply)", "b(@apply, b)"];

/// Output content models for `out` (the `τ₂` pool).
const SPECS: [&str; 6] = ["(a|b)*", "b*", "b.(a|b)*", "a*", "b?.(a|b)*", "@empty"];

/// One compiled (transducer, output DTD) pair with its violation
/// automaton — everything that does not depend on the input DTD.
struct Compiled {
    t: xmltc::core::PebbleTransducer,
    enc_in: xmltc::trees::EncodedAlphabet,
    tau2: Nta,
    violations: Nta,
}

/// Compiles a (stylesheet, spec) combo; tags the stylesheet can never
/// output become `@empty` in the content model.
fn compile(root_body: &str, a_body: &str, spec: &str) -> Compiled {
    let sheet = Stylesheet::new(vec![
        Template::parse("root", root_body).unwrap(),
        Template::parse("a", a_body).unwrap(),
    ]);
    // Any DTD with the {root, a} tag set yields the same input alphabet.
    let probe_dtd = Dtd::parse_text(INPUT_DTDS[0]).unwrap();
    let (t, enc_in, enc_out) = sheet.compile(probe_dtd.alphabet()).unwrap();
    let out_src = enc_out.source();
    let mut spec_text = spec.to_string();
    let avail: Vec<&str> = ["a", "b"]
        .into_iter()
        .filter(|t| out_src.get(t).is_some())
        .collect();
    let mut lines = Vec::new();
    for tag in ["a", "b"] {
        if avail.contains(&tag) {
            lines.push(format!("{tag} := ({})*", avail.join("|")));
        } else {
            spec_text = spec_text.replace(tag, "@empty");
        }
    }
    lines.insert(0, format!("out := {spec_text}"));
    let tau2 = Dtd::parse_text_with(&lines.join("\n"), out_src)
        .unwrap()
        .compile(&enc_out)
        .unwrap();
    let violations = violation_nta(&t, &tau2, &TypecheckOptions::default()).unwrap();
    Compiled {
        t,
        enc_in,
        tau2,
        violations,
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Re-verifies an engine's counterexample independently of the engine
/// that found it: the input must be in `τ₁`, the input's output language
/// must leak outside `τ₂`, and the extracted bad output must exhibit the
/// leak.
fn verify_cex(ctx: &str, c: &Compiled, tau1: &Nta, input: &BinaryTree, engine: Engine) {
    assert!(
        tau1.accepts(input).unwrap(),
        "{ctx}: cex input must be valid"
    );
    let out_lang = xmltc::core::output_automaton(&c.t, input).unwrap().to_nta();
    let bad = out_lang.intersect(&c.tau2.complement().to_nta());
    assert!(!bad.is_empty(), "{ctx}: cex must actually violate the spec");
    let bad_output = match engine {
        Engine::Eager => extract_bad_output(&c.t, input, &c.tau2).unwrap(),
        _ => extract_bad_output_with(&c.t, input, &c.tau2, engine, &TypecheckOptions::default())
            .unwrap(),
    };
    let b = bad_output.expect("bad output extracted for every counterexample");
    assert!(
        out_lang.accepts(&b).unwrap(),
        "{ctx}: bad output must be producible"
    );
    assert!(
        !c.tau2.accepts(&b).unwrap(),
        "{ctx}: bad output must be rejected by tau2"
    );
    // The replay verifier re-executes the pair through the real
    // transformer + validator and must confirm every leg.
    let ev = replay_counterexample(&c.t, tau1, &c.tau2, input, &b).unwrap();
    assert!(
        ev.verified(),
        "{ctx}: replay not confirmed (input_in_type={}, output_produced={}, output_rejected={})",
        ev.input_in_type,
        ev.output_produced,
        ev.output_rejected
    );
    dump_explain(&c.t, engine, input, &b, &ev);
}

/// Reports dumped so far when `XMLTC_EXPLAIN_DIR` is set (capped so a
/// counterexample-heavy run does not flood the artifact store).
static EXPLAIN_DUMPS: AtomicUsize = AtomicUsize::new(0);
const EXPLAIN_DUMP_CAP: usize = 32;

/// When `XMLTC_EXPLAIN_DIR` is set, writes the annotated explain report
/// (schema `xmltc.explain/1`) for a verified counterexample into that
/// directory — the CI differential job uploads them as artifacts.
fn dump_explain(
    t: &xmltc::core::PebbleTransducer,
    engine: Engine,
    input: &BinaryTree,
    bad: &BinaryTree,
    ev: &ReplayEvidence,
) {
    let Ok(dir) = std::env::var("XMLTC_EXPLAIN_DIR") else {
        return;
    };
    let n = EXPLAIN_DUMPS.fetch_add(1, Ordering::Relaxed);
    if n >= EXPLAIN_DUMP_CAP {
        return;
    }
    let engine_name = match engine {
        Engine::Eager => "eager",
        _ => "lazy",
    };
    let mut report = ExplainReport::ok("walk", engine_name);
    report.verdict = "counterexample".into();
    report.input = Some(DocumentRecord {
        term: input.to_string(),
        xml: None,
    });
    report.output = Some(DocumentRecord {
        term: bad.to_string(),
        xml: None,
    });
    report.transform = Some(TransformRecord {
        k: t.k() as u64,
        states: t.core().n_states() as u64,
        total_steps: ev.trace.len() as u64,
        truncated: false,
        steps: ev
            .trace
            .iter()
            .map(|s| TraceStepRecord {
                state: s.state.clone(),
                level: s.level as u64,
                input_symbol: s.input_symbol.clone(),
                pebbles: s.pebbles.clone(),
                action: s.action.clone(),
                out_path: s.out_path.clone(),
            })
            .collect(),
    });
    report.replay = Some(ReplayRecord {
        input_in_type: ev.input_in_type,
        output_produced: ev.output_produced,
        output_rejected: ev.output_rejected,
        steps: ev.trace.len() as u64,
    });
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = format!("{dir}/cex_{n:03}_{engine_name}.json");
        let _ = std::fs::write(path, report.to_json_string());
    }
}

#[test]
fn engines_never_disagree() {
    let cases = env_u64("XMLTC_DIFF_CASES", 200);
    let seed = env_u64("XMLTC_DIFF_SEED", 0x1e97);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut cache: HashMap<(usize, usize, usize), Rc<Compiled>> = HashMap::new();
    let mut failing = 0u64;
    let mut ok = 0u64;
    for case in 0..cases {
        // Cycle the (transducer, spec) combos so coverage is exhaustive,
        // draw the input DTD randomly so the triples stay random.
        let combo = case as usize;
        let ri = combo % ROOT_BODIES.len();
        let ai = (combo / ROOT_BODIES.len()) % A_BODIES.len();
        let si = (combo / (ROOT_BODIES.len() * A_BODIES.len())) % SPECS.len();
        let input_dtd = *rng.choose(&INPUT_DTDS);
        let (root_body, a_body, spec) = (ROOT_BODIES[ri], A_BODIES[ai], SPECS[si]);
        let ctx = format!(
            "case {case} (seed {seed:#x}): dtd {:?}, root→{root_body}, a→{a_body}, spec {spec}",
            input_dtd.replace('\n', "; ")
        );
        let c = cache
            .entry((ri, ai, si))
            .or_insert_with(|| Rc::new(compile(root_body, a_body, spec)))
            .clone();
        let tau1 = Dtd::parse_text_with(input_dtd, c.enc_in.source())
            .unwrap()
            .compile(&c.enc_in)
            .unwrap();

        // The two engines decide the same emptiness instance.
        let eager_witness = tau1.intersect(&c.violations).witness();
        let (lazy_out, stats) =
            lazy::intersection_witness(&tau1, &c.violations, 4_000_000).unwrap();
        let lazy_witness = lazy_out.into_witness();
        assert_eq!(
            eager_witness.is_some(),
            lazy_witness.is_some(),
            "{ctx}: engines disagree"
        );
        assert!(
            stats.states_materialized <= stats.states_eager,
            "{ctx}: lazy materialized more states than the eager product"
        );

        // The bounded-exhaustive oracle: enumerates τ₁ inputs up to a
        // depth bound and checks each concretely.
        let bounded = bounded_typecheck(&c.t, &tau1, &c.tau2, 5, 16).unwrap();
        if let BoundedOutcome::CounterExample { input, .. } = &bounded {
            assert!(
                eager_witness.is_some(),
                "{ctx}: engines said OK but bounded found {input}"
            );
        }

        // Every engine-produced counterexample must verify independently.
        match (&eager_witness, &lazy_witness) {
            (Some(e), Some(l)) => {
                failing += 1;
                verify_cex(&format!("{ctx} [eager]"), &c, &tau1, e, Engine::Eager);
                verify_cex(&format!("{ctx} [lazy]"), &c, &tau1, l, Engine::Lazy);
            }
            (None, None) => ok += 1,
            _ => unreachable!(),
        }
    }
    // The pools must actually exercise both verdicts, or the comparison
    // proves nothing.
    assert!(failing > 0, "no failing instances in {cases} cases");
    assert!(ok > 0, "no passing instances in {cases} cases");
}

// ---------------------------------------------------------------------------
// Corpus-driven differential testing: builder-generated adversarial triples.
// ---------------------------------------------------------------------------

/// When `XMLTC_CORPUS_DIR` is set, writes the failing triple (original and
/// minimized renders) there so CI can upload it as an artifact.
fn dump_corpus_failure(ctx: &str, reason: &str, original: &Scenario, minimized: &Scenario) {
    let Ok(dir) = std::env::var("XMLTC_CORPUS_DIR") else {
        return;
    };
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = format!(
        "{dir}/fail_{}_{}.txt",
        original.family.name(),
        original.index
    );
    let body = format!(
        "# {ctx}\n# reason: {reason}\n\n## original\n{}\n## minimized\n{}",
        original.render(),
        minimized.render()
    );
    let _ = std::fs::write(path, body);
}

/// Shrinks a failing scenario with the greedy minimizer, dumps the triple
/// for CI, and fails the test with the *minimized* reproduction — the
/// contract that no disagreement is ever reported un-minimized.
fn fail_minimized(
    ctx: &str,
    scenario: &Scenario,
    reason: &str,
    still_fails: impl FnMut(&Scenario) -> bool,
) -> ! {
    let out = minimize_scenario(scenario, still_fails);
    dump_corpus_failure(ctx, reason, scenario, &out.scenario);
    panic!(
        "{ctx}: {reason}\nminimized reproduction ({} components removed, {} candidates tried):\n{}",
        out.removed,
        out.tried,
        out.scenario.render()
    );
}

/// Typecheck options for corpus runs: like the defaults, but with the
/// Theorem 4.7 state budget clamped to [`CORPUS_STATE_LIMIT`]
/// (`XMLTC_CORPUS_STATE_LIMIT` overrides). Rare draws make the walk
/// construction's per-state behaviour fixpoints explode; the tight budget
/// turns such cases into explicit, counted resource skips instead of
/// multi-minute hangs — essential under the CI job's rotating seeds.
fn corpus_opts() -> TypecheckOptions {
    TypecheckOptions {
        state_limit: env_u64("XMLTC_CORPUS_STATE_LIMIT", CORPUS_STATE_LIMIT as u64) as u32,
        ..TypecheckOptions::default()
    }
}

/// True when the candidate still lowers and the engines still disagree on
/// it — the minimizer predicate for verdict mismatches.
fn still_disagrees(cand: &Scenario) -> bool {
    let Ok(c) = cand.compile() else {
        return false;
    };
    differential_emptiness(&c.transducer, &c.tau1, &c.tau2, &corpus_opts())
        .map(|v| !v.agree())
        .unwrap_or(false)
}

/// Verifies one engine's corpus counterexample end to end: input ∈ τ₁, a
/// concrete bad output exists, and the replay verifier confirms all three
/// legs on the real transducer. Any failed leg reports a minimized triple.
fn verify_corpus_cex(
    ctx: &str,
    scenario: &Scenario,
    c: &xmltc::dsl::CompiledScenario,
    input: &BinaryTree,
    engine: Engine,
) {
    let ectx = format!("{ctx} [{engine:?}]");
    assert!(
        c.tau1.accepts(input).unwrap(),
        "{ectx}: cex input must be valid\n{}",
        scenario.render()
    );
    let bad = extract_bad_output(&c.transducer, input, &c.tau2).unwrap();
    let Some(b) = bad else {
        fail_minimized(
            &ectx,
            scenario,
            "counterexample input has no extractable bad output",
            |cand| {
                let Ok(cc) = cand.compile() else {
                    return false;
                };
                let Ok(vv) = violations_of(&cc) else {
                    return false;
                };
                let Some(w) = cc.tau1.intersect(&vv).witness() else {
                    return false;
                };
                matches!(extract_bad_output(&cc.transducer, &w, &cc.tau2), Ok(None))
            },
        );
    };
    let ev = replay_counterexample(&c.transducer, &c.tau1, &c.tau2, input, &b).unwrap();
    if !ev.verified() {
        fail_minimized(
            &ectx,
            scenario,
            "replay did not confirm the counterexample",
            {
                let input = input.clone();
                let b = b.clone();
                move |cand| {
                    let Ok(cc) = cand.compile() else {
                        return false;
                    };
                    replay_counterexample(&cc.transducer, &cc.tau1, &cc.tau2, &input, &b)
                        .map(|e| !e.verified())
                        .unwrap_or(false)
                }
            },
        );
    }
    dump_explain(&c.transducer, engine, input, &b, &ev);
}

fn violations_of(c: &xmltc::dsl::CompiledScenario) -> Result<Nta, TypecheckError> {
    violation_nta(&c.transducer, &c.tau2, &corpus_opts())
}

/// Runs `cases` corpus cases of one family through both engines; returns
/// `(ok, failing, skipped)` verdict counts. Every disagreement and every
/// replay failure is reported as a minimized triple. A case whose
/// Theorem 4.7 construction exceeds the corpus state budget (see
/// [`corpus_opts`]) is counted in `skipped` — callers bound the skip rate
/// so a budget regression cannot silently hollow out the sweep.
fn run_corpus_family(family: Family, seed: u64, cases: u64) -> (u64, u64, u64) {
    let opts = corpus_opts();
    let (mut ok, mut failing, mut skipped) = (0u64, 0u64, 0u64);
    for index in 0..cases {
        let scenario = generate(seed, family, index);
        let ctx = format!("corpus {} #{index} (seed {seed:#x})", family.name());
        let c = scenario.compile().unwrap_or_else(|e| {
            panic!(
                "{ctx}: generated case does not lower: {e}\n{}",
                scenario.render()
            )
        });
        let v = match differential_emptiness(&c.transducer, &c.tau1, &c.tau2, &opts) {
            Ok(v) => v,
            Err(TypecheckError::TooManyStates { n }) => {
                eprintln!("{ctx}: resource skip (state budget exceeded at {n})");
                skipped += 1;
                continue;
            }
            Err(e) => panic!("{ctx}: pipeline error: {e}\n{}", scenario.render()),
        };
        // (No `states_materialized ≤ states_eager` assertion here: that
        // economy only kicks in once products are large; corpus cases are
        // deliberately tiny and the lazy search's constant overhead can
        // exceed |τ₁|·|violations| on them.)
        if !v.agree() {
            fail_minimized(&ctx, &scenario, "engines disagree", still_disagrees);
        }
        match (&v.eager_witness, &v.lazy_witness) {
            (Some(e), Some(l)) => {
                failing += 1;
                verify_corpus_cex(&ctx, &scenario, &c, e, Engine::Eager);
                verify_corpus_cex(&ctx, &scenario, &c, l, Engine::Lazy);
            }
            (None, None) => ok += 1,
            _ => unreachable!("agree() checked above"),
        }
    }
    (ok, failing, skipped)
}

/// Asserts resource skips stay rare (≤ 2% of the sweep): the budget is
/// there to convert pathological walk-construction blowups into explicit
/// skips, not to quietly exempt whole families from coverage.
fn assert_skips_rare(ctx: &str, skipped: u64, total: u64) {
    assert!(
        skipped * 50 <= total,
        "{ctx}: {skipped} of {total} cases skipped on the state budget — \
         more than 2%; the corpus budget no longer fits the generator"
    );
}

/// The corpus sweep: every adversarial family, both engines, minimized
/// reporting. `XMLTC_CORPUS_CASES` scales the per-family count — the CI
/// corpus job sets it so the total is ≥2000; the default keeps a plain
/// `cargo test` fast.
#[test]
fn corpus_families_agree() {
    let per_family = env_u64("XMLTC_CORPUS_CASES", 40);
    let seed = env_u64("XMLTC_CORPUS_SEED", 0xc0de);
    let (mut ok, mut failing, mut skipped) = (0u64, 0u64, 0u64);
    for &family in &FAMILIES {
        let (o, f, s) = run_corpus_family(family, seed, per_family);
        ok += o;
        failing += f;
        skipped += s;
    }
    // The corpus must exercise both verdicts or the comparison proves
    // nothing.
    assert!(failing > 0, "no failing corpus instances");
    assert!(ok > 0, "no passing corpus instances");
    assert_skips_rare("corpus sweep", skipped, per_family * FAMILIES.len() as u64);
}

/// Satellite focus: the silent-transition-heavy family alone, at depth —
/// long ε-chains and silent cycles are where lazy and eager search differ
/// most, so this family gets its own ≥200-case run with replay enforced
/// on every counterexample (inside `verify_corpus_cex`).
#[test]
fn silent_chains_stress() {
    let cases = env_u64("XMLTC_SILENT_CASES", 200);
    let seed = env_u64("XMLTC_CORPUS_SEED", 0xc0de) ^ 0x51f3;
    let (ok, failing, skipped) = run_corpus_family(Family::SilentChains, seed, cases);
    assert!(ok > 0, "no passing silent-chain instances in {cases}");
    assert!(failing > 0, "no failing silent-chain instances in {cases}");
    assert_skips_rare("silent-chain stress", skipped, cases);
}

/// Satellite: minimizer property test against the real differential
/// predicate — a shrunken failing case still fails (the minimizer's
/// invariant), and shrinking is deterministic for a fixed seed.
#[test]
fn minimizer_preserves_failure_and_is_deterministic() {
    let seed = env_u64("XMLTC_CORPUS_SEED", 0xc0de);
    let fails_eagerly = |cand: &Scenario| {
        let Ok(c) = cand.compile() else {
            return false;
        };
        // Budget-exceeded candidates count as "not failing": the predicate
        // stays total and deterministic, which is all the property needs.
        let Ok(v) = violations_of(&c) else {
            return false;
        };
        !c.tau1.intersect(&v).is_empty()
    };
    let mut shrunk = 0u64;
    for &family in &FAMILIES {
        for index in 0..10 {
            let scenario = generate(seed, family, index);
            let a = minimize_scenario(&scenario, fails_eagerly);
            let b = minimize_scenario(&scenario, fails_eagerly);
            assert_eq!(a.scenario, b.scenario, "shrinking must be deterministic");
            assert_eq!((a.removed, a.tried), (b.removed, b.tried));
            if fails_eagerly(&scenario) {
                // Shrunken case still fails…
                assert!(
                    fails_eagerly(&a.scenario),
                    "minimizer lost the failure:\n{}",
                    a.scenario.render()
                );
                shrunk += 1;
            } else {
                // …or shrinking was a no-op on a passing case.
                assert_eq!(a.scenario, scenario);
                assert_eq!(a.removed, 0);
            }
        }
    }
    assert!(shrunk > 0, "property test never saw a failing case");
}
