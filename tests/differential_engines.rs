//! Differential validation of the emptiness engines: the lazy on-the-fly
//! search and the eager materializing procedure must return identical
//! verdicts on every instance, and `typecheck::bounded` (exhaustive up to
//! its depth bound) must never contradict either. Every counterexample an
//! engine emits is independently re-verified against `τ₂`.
//!
//! Seeded random (input DTD, transducer, output DTD) triples drawn from
//! the in-tree [`SmallRng`]. The Theorem 4.7 walk construction depends
//! only on (transducer, output DTD), so its (expensive, engine-independent)
//! violation automaton is computed once per such pair and shared by both
//! engines — the engines then race on the final emptiness check, which is
//! where they actually differ. Case count and seed are overridable for the
//! CI nightly-style run:
//!
//! ```text
//! XMLTC_DIFF_CASES=1000 XMLTC_DIFF_SEED=7 cargo test --test differential_engines
//! ```

use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use xmltc::automata::{lazy, Nta};
use xmltc::dtd::Dtd;
use xmltc::obs::{DocumentRecord, ExplainReport, ReplayRecord, TraceStepRecord, TransformRecord};
use xmltc::trees::{BinaryTree, SmallRng};
use xmltc::typecheck::bounded::{bounded_typecheck, BoundedOutcome};
use xmltc::typecheck::check::{extract_bad_output, extract_bad_output_with};
use xmltc::typecheck::inverse::violation_nta;
use xmltc::typecheck::{replay_counterexample, Engine, ReplayEvidence, TypecheckOptions};
use xmltc::xmlql::{Stylesheet, Template};

/// Input DTDs (the `τ₁` pool). All share the tag set `{root, a}` so any
/// stylesheet below compiles against them.
const INPUT_DTDS: [&str; 5] = [
    "root := a*\na := a*",
    "root := a.a*\na := a*",
    "root := a?\na := a?",
    "root := (a.a)*\na := a*",
    "root := a*\na := @eps",
];

/// Template bodies for the `root` tag.
const ROOT_BODIES: [&str; 4] = [
    "out(@apply)",
    "out(b, @apply)",
    "out(@apply, @apply)",
    "out",
];

/// Template bodies for the `a` tag.
const A_BODIES: [&str; 4] = ["a", "b", "a(@apply)", "b(@apply, b)"];

/// Output content models for `out` (the `τ₂` pool).
const SPECS: [&str; 6] = ["(a|b)*", "b*", "b.(a|b)*", "a*", "b?.(a|b)*", "@empty"];

/// One compiled (transducer, output DTD) pair with its violation
/// automaton — everything that does not depend on the input DTD.
struct Compiled {
    t: xmltc::core::PebbleTransducer,
    enc_in: xmltc::trees::EncodedAlphabet,
    tau2: Nta,
    violations: Nta,
}

/// Compiles a (stylesheet, spec) combo; tags the stylesheet can never
/// output become `@empty` in the content model.
fn compile(root_body: &str, a_body: &str, spec: &str) -> Compiled {
    let sheet = Stylesheet::new(vec![
        Template::parse("root", root_body).unwrap(),
        Template::parse("a", a_body).unwrap(),
    ]);
    // Any DTD with the {root, a} tag set yields the same input alphabet.
    let probe_dtd = Dtd::parse_text(INPUT_DTDS[0]).unwrap();
    let (t, enc_in, enc_out) = sheet.compile(probe_dtd.alphabet()).unwrap();
    let out_src = enc_out.source();
    let mut spec_text = spec.to_string();
    let avail: Vec<&str> = ["a", "b"]
        .into_iter()
        .filter(|t| out_src.get(t).is_some())
        .collect();
    let mut lines = Vec::new();
    for tag in ["a", "b"] {
        if avail.contains(&tag) {
            lines.push(format!("{tag} := ({})*", avail.join("|")));
        } else {
            spec_text = spec_text.replace(tag, "@empty");
        }
    }
    lines.insert(0, format!("out := {spec_text}"));
    let tau2 = Dtd::parse_text_with(&lines.join("\n"), out_src)
        .unwrap()
        .compile(&enc_out)
        .unwrap();
    let violations = violation_nta(&t, &tau2, &TypecheckOptions::default()).unwrap();
    Compiled {
        t,
        enc_in,
        tau2,
        violations,
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Re-verifies an engine's counterexample independently of the engine
/// that found it: the input must be in `τ₁`, the input's output language
/// must leak outside `τ₂`, and the extracted bad output must exhibit the
/// leak.
fn verify_cex(ctx: &str, c: &Compiled, tau1: &Nta, input: &BinaryTree, engine: Engine) {
    assert!(
        tau1.accepts(input).unwrap(),
        "{ctx}: cex input must be valid"
    );
    let out_lang = xmltc::core::output_automaton(&c.t, input).unwrap().to_nta();
    let bad = out_lang.intersect(&c.tau2.complement().to_nta());
    assert!(!bad.is_empty(), "{ctx}: cex must actually violate the spec");
    let bad_output = match engine {
        Engine::Eager => extract_bad_output(&c.t, input, &c.tau2).unwrap(),
        _ => extract_bad_output_with(&c.t, input, &c.tau2, engine, &TypecheckOptions::default())
            .unwrap(),
    };
    let b = bad_output.expect("bad output extracted for every counterexample");
    assert!(
        out_lang.accepts(&b).unwrap(),
        "{ctx}: bad output must be producible"
    );
    assert!(
        !c.tau2.accepts(&b).unwrap(),
        "{ctx}: bad output must be rejected by tau2"
    );
    // The replay verifier re-executes the pair through the real
    // transformer + validator and must confirm every leg.
    let ev = replay_counterexample(&c.t, tau1, &c.tau2, input, &b).unwrap();
    assert!(
        ev.verified(),
        "{ctx}: replay not confirmed (input_in_type={}, output_produced={}, output_rejected={})",
        ev.input_in_type,
        ev.output_produced,
        ev.output_rejected
    );
    dump_explain(&c.t, engine, input, &b, &ev);
}

/// Reports dumped so far when `XMLTC_EXPLAIN_DIR` is set (capped so a
/// counterexample-heavy run does not flood the artifact store).
static EXPLAIN_DUMPS: AtomicUsize = AtomicUsize::new(0);
const EXPLAIN_DUMP_CAP: usize = 32;

/// When `XMLTC_EXPLAIN_DIR` is set, writes the annotated explain report
/// (schema `xmltc.explain/1`) for a verified counterexample into that
/// directory — the CI differential job uploads them as artifacts.
fn dump_explain(
    t: &xmltc::core::PebbleTransducer,
    engine: Engine,
    input: &BinaryTree,
    bad: &BinaryTree,
    ev: &ReplayEvidence,
) {
    let Ok(dir) = std::env::var("XMLTC_EXPLAIN_DIR") else {
        return;
    };
    let n = EXPLAIN_DUMPS.fetch_add(1, Ordering::Relaxed);
    if n >= EXPLAIN_DUMP_CAP {
        return;
    }
    let engine_name = match engine {
        Engine::Eager => "eager",
        _ => "lazy",
    };
    let mut report = ExplainReport::ok("walk", engine_name);
    report.verdict = "counterexample".into();
    report.input = Some(DocumentRecord {
        term: input.to_string(),
        xml: None,
    });
    report.output = Some(DocumentRecord {
        term: bad.to_string(),
        xml: None,
    });
    report.transform = Some(TransformRecord {
        k: t.k() as u64,
        states: t.core().n_states() as u64,
        total_steps: ev.trace.len() as u64,
        truncated: false,
        steps: ev
            .trace
            .iter()
            .map(|s| TraceStepRecord {
                state: s.state.clone(),
                level: s.level as u64,
                input_symbol: s.input_symbol.clone(),
                pebbles: s.pebbles.clone(),
                action: s.action.clone(),
                out_path: s.out_path.clone(),
            })
            .collect(),
    });
    report.replay = Some(ReplayRecord {
        input_in_type: ev.input_in_type,
        output_produced: ev.output_produced,
        output_rejected: ev.output_rejected,
        steps: ev.trace.len() as u64,
    });
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = format!("{dir}/cex_{n:03}_{engine_name}.json");
        let _ = std::fs::write(path, report.to_json_string());
    }
}

#[test]
fn engines_never_disagree() {
    let cases = env_u64("XMLTC_DIFF_CASES", 200);
    let seed = env_u64("XMLTC_DIFF_SEED", 0x1e97);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut cache: HashMap<(usize, usize, usize), Rc<Compiled>> = HashMap::new();
    let mut failing = 0u64;
    let mut ok = 0u64;
    for case in 0..cases {
        // Cycle the (transducer, spec) combos so coverage is exhaustive,
        // draw the input DTD randomly so the triples stay random.
        let combo = case as usize;
        let ri = combo % ROOT_BODIES.len();
        let ai = (combo / ROOT_BODIES.len()) % A_BODIES.len();
        let si = (combo / (ROOT_BODIES.len() * A_BODIES.len())) % SPECS.len();
        let input_dtd = *rng.choose(&INPUT_DTDS);
        let (root_body, a_body, spec) = (ROOT_BODIES[ri], A_BODIES[ai], SPECS[si]);
        let ctx = format!(
            "case {case} (seed {seed:#x}): dtd {:?}, root→{root_body}, a→{a_body}, spec {spec}",
            input_dtd.replace('\n', "; ")
        );
        let c = cache
            .entry((ri, ai, si))
            .or_insert_with(|| Rc::new(compile(root_body, a_body, spec)))
            .clone();
        let tau1 = Dtd::parse_text_with(input_dtd, c.enc_in.source())
            .unwrap()
            .compile(&c.enc_in)
            .unwrap();

        // The two engines decide the same emptiness instance.
        let eager_witness = tau1.intersect(&c.violations).witness();
        let (lazy_out, stats) =
            lazy::intersection_witness(&tau1, &c.violations, 4_000_000).unwrap();
        let lazy_witness = lazy_out.into_witness();
        assert_eq!(
            eager_witness.is_some(),
            lazy_witness.is_some(),
            "{ctx}: engines disagree"
        );
        assert!(
            stats.states_materialized <= stats.states_eager,
            "{ctx}: lazy materialized more states than the eager product"
        );

        // The bounded-exhaustive oracle: enumerates τ₁ inputs up to a
        // depth bound and checks each concretely.
        let bounded = bounded_typecheck(&c.t, &tau1, &c.tau2, 5, 16).unwrap();
        if let BoundedOutcome::CounterExample { input, .. } = &bounded {
            assert!(
                eager_witness.is_some(),
                "{ctx}: engines said OK but bounded found {input}"
            );
        }

        // Every engine-produced counterexample must verify independently.
        match (&eager_witness, &lazy_witness) {
            (Some(e), Some(l)) => {
                failing += 1;
                verify_cex(&format!("{ctx} [eager]"), &c, &tau1, e, Engine::Eager);
                verify_cex(&format!("{ctx} [lazy]"), &c, &tau1, l, Engine::Lazy);
            }
            (None, None) => ok += 1,
            _ => unreachable!(),
        }
    }
    // The pools must actually exercise both verdicts, or the comparison
    // proves nothing.
    assert!(failing > 0, "no failing instances in {cases} cases");
    assert!(ok > 0, "no passing instances in {cases} cases");
}
