//! Genuinely multi-pebble behaviour through the full pipeline: machines
//! whose acceptance depends on pebble-presence guards, converted to
//! regular tree automata by the paper's MSO construction (Theorem 4.7,
//! k ≥ 2) and validated against direct AGAP acceptance.

use std::sync::Arc;
use xmltc::core::accepts;
use xmltc::core::machine::{Guard, Move, PebbleAutomaton};
use xmltc::dsl::{MachineSpec, Syms};
use xmltc::trees::{Alphabet, BinaryTree};
use xmltc::typecheck::mso_route::pebble_to_nta;

fn alpha() -> Arc<Alphabet> {
    Alphabet::ranked(&["x", "y"], &["f"])
}

/// Two distinct y leaves (see `xmltc_bench::two_y_leaves`).
fn two_y(al: &Arc<Alphabet>) -> PebbleAutomaton {
    let mut s = MachineSpec::new("two_y", 2);
    s.state("w1", 1).state("w2", 2).initial("w1");
    for m in [Move::DownLeft, Move::DownRight] {
        s.walk(Syms::Binaries, "w1", Guard::any(), m, "w1");
        s.walk(Syms::Binaries, "w2", Guard::any(), m, "w2");
    }
    s.walk(Syms::one("y"), "w1", Guard::any(), Move::PlaceNew, "w2");
    s.accept(Syms::one("y"), "w2", Guard::absent(1));
    s.build_automaton(al).unwrap()
}

const TREES: [(&str, bool); 8] = [
    ("x", false),
    ("y", false),
    ("f(y, x)", false),
    ("f(y, y)", true),
    ("f(f(y, x), x)", false),
    ("f(f(y, x), y)", true),
    ("f(f(x, x), f(x, x))", false),
    ("f(f(y, y), f(x, x))", true),
];

#[test]
fn agap_semantics() {
    let al = alpha();
    let a = two_y(&al);
    for (src, want) in TREES {
        let t = BinaryTree::parse(src, &al).unwrap();
        assert_eq!(accepts(&a, &t).unwrap(), want, "{src}");
    }
}

#[test]
fn mso_route_converts_two_pebble_machine() {
    // Theorem 4.7 at k = 2: the regular language derived from the MSO
    // encoding matches AGAP acceptance — and the automaton is small (the
    // language "≥ 2 y-leaves" needs 3 states).
    let al = alpha();
    let a = two_y(&al);
    let (nta, stats) = pebble_to_nta(&a, 1_000_000).unwrap();
    assert!(stats.determinizations > 0);
    for (src, want) in TREES {
        let t = BinaryTree::parse(src, &al).unwrap();
        assert_eq!(nta.accepts(&t).unwrap(), want, "{src}");
    }
    assert!(nta.trim().n_states() <= 4, "minimal-ish result expected");
}

/// Pick transitions: pebble 2 scouts the leftmost leaf; control returns to
/// pebble 1 which then accepts at the root only if the scout succeeded.
#[test]
fn pick_returns_control() {
    let al = alpha();
    let mut s = MachineSpec::new("pick_scout", 2);
    s.state("start", 1)
        .state("scout", 2)
        .state("found", 2)
        .state("done", 1)
        .initial("start");
    s.walk(Syms::Any, "start", Guard::any(), Move::PlaceNew, "scout");
    s.walk(
        Syms::Binaries,
        "scout",
        Guard::any(),
        Move::DownLeft,
        "scout",
    );
    s.walk(Syms::one("y"), "scout", Guard::any(), Move::Stay, "found");
    s.walk(Syms::Any, "found", Guard::any(), Move::PickCurrent, "done");
    s.accept(Syms::Any, "done", Guard::any());
    let a = s.build_automaton(&al).unwrap();

    let cases = [
        ("y", true),
        ("x", false),
        ("f(y, x)", true),
        ("f(x, y)", false),
        ("f(f(y, x), x)", true),
        ("f(f(x, y), y)", false),
    ];
    for (src, want) in cases {
        let t = BinaryTree::parse(src, &al).unwrap();
        assert_eq!(accepts(&a, &t).unwrap(), want, "AGAP {src}");
    }
    let (nta, _) = pebble_to_nta(&a, 1_000_000).unwrap();
    for (src, want) in cases {
        let t = BinaryTree::parse(src, &al).unwrap();
        assert_eq!(nta.accepts(&t).unwrap(), want, "MSO {src}");
    }
}
