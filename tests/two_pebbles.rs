//! Genuinely multi-pebble behaviour through the full pipeline: machines
//! whose acceptance depends on pebble-presence guards, converted to
//! regular tree automata by the paper's MSO construction (Theorem 4.7,
//! k ≥ 2) and validated against direct AGAP acceptance.

use std::sync::Arc;
use xmltc::core::accepts;
use xmltc::core::machine::{AutomatonBuilder, Guard, Move, PebbleAutomaton, SymSpec};
use xmltc::trees::{Alphabet, BinaryTree};
use xmltc::typecheck::mso_route::pebble_to_nta;

fn alpha() -> Arc<Alphabet> {
    Alphabet::ranked(&["x", "y"], &["f"])
}

/// Two distinct y leaves (see `xmltc_bench::two_y_leaves`).
fn two_y(al: &Arc<Alphabet>) -> PebbleAutomaton {
    let y = al.get("y").unwrap();
    let mut b = AutomatonBuilder::new(al, 2);
    let w1 = b.state("w1", 1).unwrap();
    let w2 = b.state("w2", 2).unwrap();
    b.set_initial(w1);
    for m in [Move::DownLeft, Move::DownRight] {
        b.move_rule(SymSpec::Binaries, w1, Guard::any(), m, w1)
            .unwrap();
        b.move_rule(SymSpec::Binaries, w2, Guard::any(), m, w2)
            .unwrap();
    }
    b.move_rule(SymSpec::One(y), w1, Guard::any(), Move::PlaceNew, w2)
        .unwrap();
    b.branch0(SymSpec::One(y), w2, Guard::absent(1)).unwrap();
    b.build().unwrap()
}

const TREES: [(&str, bool); 8] = [
    ("x", false),
    ("y", false),
    ("f(y, x)", false),
    ("f(y, y)", true),
    ("f(f(y, x), x)", false),
    ("f(f(y, x), y)", true),
    ("f(f(x, x), f(x, x))", false),
    ("f(f(y, y), f(x, x))", true),
];

#[test]
fn agap_semantics() {
    let al = alpha();
    let a = two_y(&al);
    for (src, want) in TREES {
        let t = BinaryTree::parse(src, &al).unwrap();
        assert_eq!(accepts(&a, &t).unwrap(), want, "{src}");
    }
}

#[test]
fn mso_route_converts_two_pebble_machine() {
    // Theorem 4.7 at k = 2: the regular language derived from the MSO
    // encoding matches AGAP acceptance — and the automaton is small (the
    // language "≥ 2 y-leaves" needs 3 states).
    let al = alpha();
    let a = two_y(&al);
    let (nta, stats) = pebble_to_nta(&a, 1_000_000).unwrap();
    assert!(stats.determinizations > 0);
    for (src, want) in TREES {
        let t = BinaryTree::parse(src, &al).unwrap();
        assert_eq!(nta.accepts(&t).unwrap(), want, "{src}");
    }
    assert!(nta.trim().n_states() <= 4, "minimal-ish result expected");
}

/// Pick transitions: pebble 2 scouts the leftmost leaf; control returns to
/// pebble 1 which then accepts at the root only if the scout succeeded.
#[test]
fn pick_returns_control() {
    let al = alpha();
    let y = al.get("y").unwrap();
    let mut b = AutomatonBuilder::new(&al, 2);
    let start = b.state("start", 1).unwrap();
    let scout = b.state("scout", 2).unwrap();
    let found = b.state("found", 2).unwrap();
    let done = b.state("done", 1).unwrap();
    b.set_initial(start);
    b.move_rule(SymSpec::Any, start, Guard::any(), Move::PlaceNew, scout)
        .unwrap();
    b.move_rule(
        SymSpec::Binaries,
        scout,
        Guard::any(),
        Move::DownLeft,
        scout,
    )
    .unwrap();
    b.move_rule(SymSpec::One(y), scout, Guard::any(), Move::Stay, found)
        .unwrap();
    b.move_rule(SymSpec::Any, found, Guard::any(), Move::PickCurrent, done)
        .unwrap();
    b.branch0(SymSpec::Any, done, Guard::any()).unwrap();
    let a = b.build().unwrap();

    let cases = [
        ("y", true),
        ("x", false),
        ("f(y, x)", true),
        ("f(x, y)", false),
        ("f(f(y, x), x)", true),
        ("f(f(x, y), y)", false),
    ];
    for (src, want) in cases {
        let t = BinaryTree::parse(src, &al).unwrap();
        assert_eq!(accepts(&a, &t).unwrap(), want, "AGAP {src}");
    }
    let (nta, _) = pebble_to_nta(&a, 1_000_000).unwrap();
    for (src, want) in cases {
        let t = BinaryTree::parse(src, &al).unwrap();
        assert_eq!(nta.accepts(&t).unwrap(), want, "MSO {src}");
    }
}
