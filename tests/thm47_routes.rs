//! Theorem 4.7 cross-validation: the behaviour-composition route and the
//! paper's MSO route must produce equivalent tree automata for 1-pebble
//! machines, and both must agree with direct AGAP acceptance.
//!
//! Driven by the workspace's deterministic [`SmallRng`]; runs a fixed
//! number of seeded cases. Also the budget-honoring property: with a tiny
//! `state_limit` both routes fail cleanly (never panic, never blow the
//! budget silently) and the observability layer records how far they got.

use std::sync::Arc;
use xmltc::core::accepts;
use xmltc::core::machine::{Guard, Move, PebbleAutomaton};
use xmltc::dsl::{MachineSpec, Syms};
use xmltc::obs;
use xmltc::trees::{generate, Alphabet, BinaryTree, SmallRng};
use xmltc::typecheck::mso_route::pebble_to_nta;
use xmltc::typecheck::walk::walking_to_dbta;
use xmltc::typecheck::TypecheckError;

fn alpha() -> Arc<Alphabet> {
    Alphabet::ranked(&["x", "y"], &["f"])
}

/// A small random 1-pebble automaton: a few states, random rules drawn
/// from moves/branches. (Random rule soup leaves states unreachable, so
/// the spec opts out of the builder's reachability check.)
fn rand_machine(rng: &mut SmallRng, al: &Arc<Alphabet>) -> PebbleAutomaton {
    let n = rng.gen_range(2..5) as u32;
    let mut s = MachineSpec::new("rand", 1);
    let states: Vec<String> = (0..n).map(|i| format!("s{i}")).collect();
    for name in &states {
        s.state(name, 1);
    }
    s.initial("s0").allow_unreachable();
    for _ in 0..rng.gen_range(1..10) {
        let spec = match rng.gen_range(0..3) {
            0 => Syms::Leaves,
            1 => Syms::Binaries,
            _ => Syms::Any,
        };
        let q = rng.choose(&states).clone();
        let t1 = rng.choose(&states).clone();
        let t2 = rng.choose(&states).clone();
        match rng.gen_range(0..8) {
            0 => s.accept(spec, q, Guard::any()),
            1 => s.fork(spec, q, Guard::any(), t1, t2),
            2 => s.walk(spec, q, Guard::any(), Move::Stay, t1),
            3 => s.walk(spec, q, Guard::any(), Move::DownLeft, t1),
            4 => s.walk(spec, q, Guard::any(), Move::DownRight, t1),
            5 => s.walk(spec, q, Guard::any(), Move::UpLeft, t1),
            6 => s.walk(spec, q, Guard::any(), Move::UpRight, t1),
            _ => s.walk(spec, q, Guard::any(), Move::Stay, t2),
        };
    }
    s.build_automaton(al).unwrap()
}

#[test]
fn walk_route_agrees_with_agap() {
    let al = alpha();
    let mut rng = SmallRng::seed_from_u64(0x4701);
    for case in 0..24 {
        let a = rand_machine(&mut rng, &al);
        let t: BinaryTree = generate::random_binary(&al, 4, 0.6, &mut rng).unwrap();
        let d = walking_to_dbta(&a).unwrap();
        assert_eq!(
            d.accepts(&t).unwrap(),
            accepts(&a, &t).unwrap(),
            "case {case} on {t}"
        );
    }
}

#[test]
fn mso_route_agrees_with_walk_route() {
    let al = alpha();
    let mut rng = SmallRng::seed_from_u64(0x4702);
    for case in 0..24 {
        let a = rand_machine(&mut rng, &al);
        let d = walking_to_dbta(&a).unwrap().to_nta();
        let (m, _stats) = pebble_to_nta(&a, 500_000).unwrap();
        // Full language equivalence, not just sampled agreement.
        assert!(d.equivalent(&m), "case {case}: routes disagree");
    }
}

/// The satellite budget property: for ANY machine and ANY tiny state
/// limit, `pebble_to_nta` either finishes or returns the budget error —
/// never panics — and when it aborts, the `mso.compile` span still
/// carries the compiler's progress stats.
#[test]
fn mso_route_honors_state_limit() {
    let al = alpha();
    let mut rng = SmallRng::seed_from_u64(0x4703);
    let mut aborted = 0;
    for case in 0..24 {
        let a = rand_machine(&mut rng, &al);
        let limit = 1 + rng.below(8) as u32;
        let (result, report) = obs::with_report(|| pebble_to_nta(&a, limit));
        match result {
            Ok((nta, stats)) => {
                // A success under budget: the recorded high-water mark
                // must honor the limit, and the automaton is usable.
                assert!(
                    stats.max_states <= limit,
                    "case {case}: max_states {} over limit {limit}",
                    stats.max_states
                );
                let _ = nta.is_empty();
            }
            Err(TypecheckError::Mso(e)) => {
                aborted += 1;
                assert_eq!(
                    e.to_string(),
                    format!("intermediate automaton exceeded {limit} states"),
                    "case {case}"
                );
                // The report still shows how far the compiler got.
                let span = report.span("mso.compile").expect("span recorded");
                assert!(span.metric("mso.operations").is_some(), "case {case}");
                assert!(span.metric("mso.max_states").is_some(), "case {case}");
            }
            Err(other) => panic!("case {case}: unexpected error {other}"),
        }
    }
    // With limits this tiny, most cases must abort — otherwise the
    // property above exercised nothing.
    assert!(aborted >= 12, "only {aborted}/24 cases aborted");
}

/// Same property one layer down: `SymTa::determinize_limited` returns
/// `None` (instead of panicking or over-allocating) exactly when the
/// subset construction would exceed the budget, and records its frontier
/// high-water mark either way.
#[test]
fn determinize_limited_honors_budget() {
    use xmltc::mso::{compile_sentence_limited, Formula};

    let al = alpha();
    let syms: Vec<_> = al.symbols().collect();
    let mut rng = SmallRng::seed_from_u64(0x4704);
    let mut aborted = 0;
    for case in 0..24 {
        // Random sentences with a set quantifier force determinizations.
        let s = *rng.choose(&syms);
        let kernel = if rng.gen_bool(0.5) {
            Formula::Label("u".into(), s).and(Formula::In("u".into(), "S".into()))
        } else {
            Formula::In("u".into(), "S".into()).or(Formula::Leaf("u".into()))
        };
        let f = Formula::forall2("S", Formula::exists1("u", kernel));
        let limit = 1 + rng.below(4) as u32;
        let (result, report) = obs::with_report(|| compile_sentence_limited(&f, &al, limit));
        let span = report.span("mso.compile").expect("span recorded");
        match result {
            Ok((_, stats)) => {
                assert!(stats.max_states <= limit, "case {case}");
            }
            Err(e) => {
                aborted += 1;
                assert!(
                    e.to_string().contains("exceeded"),
                    "case {case}: unexpected error {e}"
                );
                // Budget-abort still reports the peak frontier reached.
                let frontier = span
                    .metric("mso.peak_subset_frontier")
                    .or_else(|| report.span_metric("mso.compile", "mso.max_states"));
                assert!(frontier.is_some(), "case {case}: no progress metric");
            }
        }
    }
    assert!(aborted >= 6, "only {aborted}/24 cases aborted");
}
