//! Theorem 4.7 cross-validation: the behaviour-composition route and the
//! paper's MSO route must produce equivalent tree automata for 1-pebble
//! machines, and both must agree with direct AGAP acceptance.

use proptest::prelude::*;
use std::sync::Arc;
use xmltc::core::accepts;
use xmltc::core::machine::{AutomatonBuilder, Guard, Move, PebbleAutomaton, SymSpec};
use xmltc::trees::{Alphabet, BinaryTree};
use xmltc::typecheck::mso_route::pebble_to_nta;
use xmltc::typecheck::walk::walking_to_dbta;

fn alpha() -> Arc<Alphabet> {
    Alphabet::ranked(&["x", "y"], &["f"])
}

/// A small random family of 1-pebble automata: a few states, random rules
/// drawn from moves/branches.
#[derive(Debug, Clone)]
struct RawMachine {
    n_states: u32,
    rules: Vec<(u8, u32, u8, u32, u32)>, // (symclass, state, action, t1, t2)
}

fn arb_machine() -> impl Strategy<Value = RawMachine> {
    (2..=4u32).prop_flat_map(|n| {
        let rule = (0..3u8, 0..n, 0..8u8, 0..n, 0..n);
        prop::collection::vec(rule, 1..10).prop_map(move |rules| RawMachine {
            n_states: n,
            rules,
        })
    })
}

fn build(raw: &RawMachine, al: &Arc<Alphabet>) -> PebbleAutomaton {
    let mut b = AutomatonBuilder::new(al, 1);
    let states: Vec<_> = (0..raw.n_states)
        .map(|i| b.state(&format!("s{i}"), 1).unwrap())
        .collect();
    b.set_initial(states[0]);
    for &(symclass, q, action, t1, t2) in &raw.rules {
        let spec = match symclass {
            0 => SymSpec::Leaves,
            1 => SymSpec::Binaries,
            _ => SymSpec::Any,
        };
        let q = states[q as usize];
        let (t1, t2) = (states[t1 as usize], states[t2 as usize]);
        let r = match action {
            0 => b.branch0(spec, q, Guard::any()),
            1 => b.branch2(spec, q, Guard::any(), t1, t2),
            2 => b.move_rule(spec, q, Guard::any(), Move::Stay, t1),
            3 => b.move_rule(spec, q, Guard::any(), Move::DownLeft, t1),
            4 => b.move_rule(spec, q, Guard::any(), Move::DownRight, t1),
            5 => b.move_rule(spec, q, Guard::any(), Move::UpLeft, t1),
            6 => b.move_rule(spec, q, Guard::any(), Move::UpRight, t1),
            _ => b.move_rule(spec, q, Guard::any(), Move::Stay, t2),
        };
        r.unwrap();
    }
    b.build().unwrap()
}

fn arb_tree(al: Arc<Alphabet>) -> impl Strategy<Value = BinaryTree> {
    let leaf = prop::sample::select(vec!["x", "y"]).prop_map(String::from);
    let expr = leaf.prop_recursive(3, 12, 2, |inner| {
        (inner.clone(), inner).prop_map(|(l, r)| format!("f({l}, {r})"))
    });
    expr.prop_map(move |src| BinaryTree::parse(&src, &al).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn walk_route_agrees_with_agap(raw in arb_machine(), t in arb_tree(alpha())) {
        let al = t.alphabet().clone();
        let a = build(&raw, &al);
        let d = walking_to_dbta(&a).unwrap();
        prop_assert_eq!(d.accepts(&t).unwrap(), accepts(&a, &t).unwrap());
    }

    #[test]
    fn mso_route_agrees_with_walk_route(raw in arb_machine()) {
        let al = alpha();
        let a = build(&raw, &al);
        let d = walking_to_dbta(&a).unwrap().to_nta();
        let (m, _stats) = pebble_to_nta(&a, 500_000).unwrap();
        // Full language equivalence, not just sampled agreement.
        prop_assert!(d.equivalent(&m), "routes disagree for {:?}", raw);
    }
}
