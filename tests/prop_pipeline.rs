//! Property-based cross-validation of the exact typechecking pipeline:
//! random XSLT-fragment stylesheets and random output specs, checked three
//! ways —
//!
//! * exact (Prop 4.6 product → behaviour route → emptiness),
//! * bounded-exhaustive (enumerate `τ₁`, per-input Prop 3.8 inclusion),
//! * concrete verification of any counterexample the exact route emits.

use proptest::prelude::*;
use xmltc::automata::Nta;
use xmltc::dtd::Dtd;
use xmltc::trees::encode;
use xmltc::typecheck::bounded::{bounded_typecheck, BoundedOutcome};
use xmltc::typecheck::{typecheck, TypecheckOptions, TypecheckOutcome};
use xmltc::xmlql::{Stylesheet, Template};

/// Template bodies for the `root` tag.
const ROOT_BODIES: [&str; 5] = [
    "out(@apply)",
    "out(b, @apply)",
    "out(@apply, @apply)",
    "out(b, @apply, b)",
    "out",
];

/// Template bodies for the `a` tag.
const A_BODIES: [&str; 4] = ["a", "b", "a(@apply)", "b(@apply, b)"];

/// Output content models for `out`.
const SPECS: [&str; 6] = [
    "(a|b)*",
    "b*",
    "b.(a|b)*",
    "((a|b).(a|b))*",
    "a*",
    "b?.(a|b)*",
];

fn pipeline(root_body: &str, a_body: &str, spec: &str) -> (
    xmltc::core::PebbleTransducer,
    Nta,
    Nta,
) {
    let sheet = Stylesheet::new(vec![
        Template::parse("root", root_body).unwrap(),
        Template::parse("a", a_body).unwrap(),
    ]);
    let input_dtd = Dtd::parse_text("root := a*\na := a*").unwrap();
    let (t, enc_in, enc_out) = sheet.compile(input_dtd.alphabet()).unwrap();
    let tau1 = input_dtd.compile(&enc_in).unwrap();
    // Build the spec over whatever tags this stylesheet can output; tags
    // the stylesheet can never emit become `@empty` in the content model.
    let out_src = enc_out.source();
    let mut spec_text = spec.to_string();
    let avail: Vec<&str> = ["a", "b"]
        .into_iter()
        .filter(|t| out_src.get(t).is_some())
        .collect();
    let mut lines = Vec::new();
    for tag in ["a", "b"] {
        if avail.contains(&tag) {
            // Nested content unconstrained (any available tags).
            if avail.is_empty() {
                lines.push(format!("{tag} := @eps"));
            } else {
                lines.push(format!("{tag} := ({})*", avail.join("|")));
            }
        } else {
            spec_text = spec_text.replace(tag, "@empty");
        }
    }
    lines.insert(0, format!("out := {spec_text}"));
    let tau2 = Dtd::parse_text_with(&lines.join("\n"), out_src)
        .unwrap()
        .compile(&enc_out)
        .unwrap();
    (t, tau1, tau2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn exact_agrees_with_bounded(
        root_body in prop::sample::select(&ROOT_BODIES[..]),
        a_body in prop::sample::select(&A_BODIES[..]),
        spec in prop::sample::select(&SPECS[..]),
    ) {
        let (t, tau1, tau2) = pipeline(root_body, a_body, spec);
        let exact = typecheck(&t, &tau1, &tau2, &TypecheckOptions::default()).unwrap();
        let bounded = bounded_typecheck(&t, &tau1, &tau2, 9, 60).unwrap();
        match (&exact, &bounded) {
            // Exact OK: bounded must not find a violation.
            (TypecheckOutcome::Ok, BoundedOutcome::CounterExample { input, .. }) => {
                prop_assert!(false, "exact said OK but bounded found {input}");
            }
            // Exact counterexample: verify it concretely.
            (TypecheckOutcome::CounterExample { input, bad_output }, _) => {
                prop_assert!(tau1.accepts(input).unwrap(), "cex input must be valid");
                let out_lang = xmltc::core::output_automaton(&t, input).unwrap().to_nta();
                let bad = out_lang.intersect(&tau2.complement().to_nta());
                prop_assert!(!bad.is_empty(), "cex must actually violate the spec");
                if let Some(b) = bad_output {
                    prop_assert!(out_lang.accepts(b).unwrap());
                    prop_assert!(!tau2.accepts(b).unwrap());
                }
            }
            _ => {}
        }
    }

    #[test]
    fn interpreter_agrees_with_compiled_machine(
        root_body in prop::sample::select(&ROOT_BODIES[..]),
        a_body in prop::sample::select(&A_BODIES[..]),
        doc in prop::sample::select(vec![
            "root", "root(a)", "root(a, a)", "root(a(a))", "root(a(a, a), a)",
        ]),
    ) {
        let sheet = Stylesheet::new(vec![
            Template::parse("root", root_body).unwrap(),
            Template::parse("a", a_body).unwrap(),
        ]);
        let input_dtd = Dtd::parse_text("root := a*\na := a*").unwrap();
        let (t, enc_in, enc_out) = sheet.compile(input_dtd.alphabet()).unwrap();
        let input = xmltc::trees::UnrankedTree::parse(doc, input_dtd.alphabet()).unwrap();
        let expected = sheet.apply(&input).unwrap();
        let encoded = encode(&input, &enc_in).unwrap();
        let out = xmltc::core::eval(&t, &encoded).unwrap();
        let decoded = xmltc::trees::decode(&out, &enc_out).unwrap();
        prop_assert_eq!(decoded.to_raw(), expected);
    }
}
