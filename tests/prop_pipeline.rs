//! Property-based cross-validation of the exact typechecking pipeline:
//! random XSLT-fragment stylesheets and random output specs, checked three
//! ways —
//!
//! * exact (Prop 4.6 product → behaviour route → emptiness),
//! * bounded-exhaustive (enumerate `τ₁`, per-input Prop 3.8 inclusion),
//! * concrete verification of any counterexample the exact route emits.
//!
//! Driven by the workspace's deterministic [`SmallRng`]; runs a fixed
//! number of seeded cases.

use xmltc::automata::Nta;
use xmltc::dtd::Dtd;
use xmltc::trees::{encode, SmallRng};
use xmltc::typecheck::bounded::{bounded_typecheck, BoundedOutcome};
use xmltc::typecheck::{typecheck, TypecheckOptions, TypecheckOutcome};
use xmltc::xmlql::{Stylesheet, Template};

/// Template bodies for the `root` tag.
const ROOT_BODIES: [&str; 5] = [
    "out(@apply)",
    "out(b, @apply)",
    "out(@apply, @apply)",
    "out(b, @apply, b)",
    "out",
];

/// Template bodies for the `a` tag.
const A_BODIES: [&str; 4] = ["a", "b", "a(@apply)", "b(@apply, b)"];

/// Output content models for `out`.
const SPECS: [&str; 6] = [
    "(a|b)*",
    "b*",
    "b.(a|b)*",
    "((a|b).(a|b))*",
    "a*",
    "b?.(a|b)*",
];

fn pipeline(
    root_body: &str,
    a_body: &str,
    spec: &str,
) -> (xmltc::core::PebbleTransducer, Nta, Nta) {
    let sheet = Stylesheet::new(vec![
        Template::parse("root", root_body).unwrap(),
        Template::parse("a", a_body).unwrap(),
    ]);
    let input_dtd = Dtd::parse_text("root := a*\na := a*").unwrap();
    let (t, enc_in, enc_out) = sheet.compile(input_dtd.alphabet()).unwrap();
    let tau1 = input_dtd.compile(&enc_in).unwrap();
    // Build the spec over whatever tags this stylesheet can output; tags
    // the stylesheet can never emit become `@empty` in the content model.
    let out_src = enc_out.source();
    let mut spec_text = spec.to_string();
    let avail: Vec<&str> = ["a", "b"]
        .into_iter()
        .filter(|t| out_src.get(t).is_some())
        .collect();
    let mut lines = Vec::new();
    for tag in ["a", "b"] {
        if avail.contains(&tag) {
            // Nested content unconstrained (any available tags).
            if avail.is_empty() {
                lines.push(format!("{tag} := @eps"));
            } else {
                lines.push(format!("{tag} := ({})*", avail.join("|")));
            }
        } else {
            spec_text = spec_text.replace(tag, "@empty");
        }
    }
    lines.insert(0, format!("out := {spec_text}"));
    let tau2 = Dtd::parse_text_with(&lines.join("\n"), out_src)
        .unwrap()
        .compile(&enc_out)
        .unwrap();
    (t, tau1, tau2)
}

#[test]
fn exact_agrees_with_bounded() {
    let mut rng = SmallRng::seed_from_u64(0x4601);
    for case in 0..24 {
        let root_body = *rng.choose(&ROOT_BODIES);
        let a_body = *rng.choose(&A_BODIES);
        let spec = *rng.choose(&SPECS);
        let ctx = format!("case {case}: root→{root_body}, a→{a_body}, spec {spec}");
        let (t, tau1, tau2) = pipeline(root_body, a_body, spec);
        let exact = typecheck(&t, &tau1, &tau2, &TypecheckOptions::default()).unwrap();
        let bounded = bounded_typecheck(&t, &tau1, &tau2, 9, 60).unwrap();
        match (&exact, &bounded) {
            // Exact OK: bounded must not find a violation.
            (TypecheckOutcome::Ok, BoundedOutcome::CounterExample { input, .. }) => {
                panic!("{ctx}: exact said OK but bounded found {input}");
            }
            // Exact counterexample: verify it concretely.
            (TypecheckOutcome::CounterExample { input, bad_output }, _) => {
                assert!(
                    tau1.accepts(input).unwrap(),
                    "{ctx}: cex input must be valid"
                );
                let out_lang = xmltc::core::output_automaton(&t, input).unwrap().to_nta();
                let bad = out_lang.intersect(&tau2.complement().to_nta());
                assert!(!bad.is_empty(), "{ctx}: cex must actually violate the spec");
                if let Some(b) = bad_output {
                    assert!(out_lang.accepts(b).unwrap(), "{ctx}");
                    assert!(!tau2.accepts(b).unwrap(), "{ctx}");
                }
            }
            _ => {}
        }
    }
}

#[test]
fn interpreter_agrees_with_compiled_machine() {
    const DOCS: [&str; 5] = [
        "root",
        "root(a)",
        "root(a, a)",
        "root(a(a))",
        "root(a(a, a), a)",
    ];
    let mut rng = SmallRng::seed_from_u64(0x4602);
    for case in 0..24 {
        let root_body = *rng.choose(&ROOT_BODIES);
        let a_body = *rng.choose(&A_BODIES);
        let doc = *rng.choose(&DOCS);
        let sheet = Stylesheet::new(vec![
            Template::parse("root", root_body).unwrap(),
            Template::parse("a", a_body).unwrap(),
        ]);
        let input_dtd = Dtd::parse_text("root := a*\na := a*").unwrap();
        let (t, enc_in, enc_out) = sheet.compile(input_dtd.alphabet()).unwrap();
        let input = xmltc::trees::UnrankedTree::parse(doc, input_dtd.alphabet()).unwrap();
        let expected = sheet.apply(&input).unwrap();
        let encoded = encode(&input, &enc_in).unwrap();
        let out = xmltc::core::eval(&t, &encoded).unwrap();
        let decoded = xmltc::trees::decode(&out, &enc_out).unwrap();
        assert_eq!(
            decoded.to_raw(),
            expected,
            "case {case}: root→{root_body}, a→{a_body} on {doc}"
        );
    }
}
