//! End-to-end over the concrete XML syntax: parse → validate → transform →
//! serialize → typecheck, across every crate in the workspace.

use xmltc::dtd::Dtd;
use xmltc::trees::{decode, encode};
use xmltc::typecheck::{typecheck, Engine, TypecheckOptions, TypecheckOutcome};
use xmltc::xml::{parse_document, raw_to_xml, to_xml};
use xmltc::xmlql::pipeline::{DocumentPipeline, DocumentVerdict};
use xmltc::xmlql::{Stylesheet, Template};

fn library_dtd() -> Dtd {
    Dtd::parse_text(
        "library := shelf*
         shelf := book*
         book := @eps",
    )
    .unwrap()
}

fn flattener() -> Stylesheet {
    // Flatten: a catalog of every book, shelves erased.
    Stylesheet::new(vec![
        Template::parse("library", "catalog(@apply)").unwrap(),
        Template::parse("shelf", "group(@apply)").unwrap(),
        Template::parse("book", "entry").unwrap(),
    ])
}

#[test]
fn parse_validate_transform_serialize() {
    let dtd = library_dtd();
    let doc = parse_document(
        "<library><shelf><book/><book/></shelf><shelf/><shelf><book/></shelf></library>",
        dtd.alphabet(),
    )
    .unwrap();
    dtd.validate(&doc).unwrap();
    assert_eq!(
        to_xml(&doc),
        "<library><shelf><book/><book/></shelf><shelf/><shelf><book/></shelf></library>"
    );

    let sheet = flattener();
    // Interpreter and compiled machine agree; serialize the result.
    let expected = sheet.apply(&doc).unwrap();
    let (t, enc_in, enc_out) = sheet.compile(dtd.alphabet()).unwrap();
    let out = xmltc::core::eval(&t, &encode(&doc, &enc_in).unwrap()).unwrap();
    let decoded = decode(&out, &enc_out).unwrap();
    assert_eq!(decoded.to_raw(), expected);
    assert_eq!(
        raw_to_xml(&expected),
        "<catalog><group><entry/><entry/></group><group/><group><entry/></group></catalog>"
    );
}

#[test]
fn typecheck_the_flattener() {
    let dtd = library_dtd();
    let sheet = flattener();
    let (t, enc_in, enc_out) = sheet.compile(dtd.alphabet()).unwrap();
    let tau1 = dtd.compile(&enc_in).unwrap();

    // Correct spec: a catalog of groups of entries.
    let good = Dtd::parse_text_with(
        "catalog := group*
         group := entry*
         entry := @eps",
        enc_out.source(),
    )
    .unwrap()
    .compile(&enc_out)
    .unwrap();
    assert!(typecheck(&t, &tau1, &good, &TypecheckOptions::default())
        .unwrap()
        .is_ok());

    // Wrong spec: every group must be nonempty — empty shelves break it.
    let wrong = Dtd::parse_text_with(
        "catalog := group*
         group := entry+
         entry := @eps",
        enc_out.source(),
    )
    .unwrap()
    .compile(&enc_out)
    .unwrap();
    match typecheck(&t, &tau1, &wrong, &TypecheckOptions::default()).unwrap() {
        TypecheckOutcome::CounterExample { input, bad_output } => {
            let doc = decode(&input, &enc_in).unwrap();
            // The offending input must contain an empty shelf.
            let has_empty_shelf = doc.preorder().iter().any(|&n| {
                doc.alphabet().name(doc.symbol(n)) == "shelf" && doc.children(n).is_empty()
            });
            assert!(
                has_empty_shelf,
                "counterexample {doc} must have an empty shelf"
            );
            let bad = decode(&bad_output.unwrap(), &enc_out).unwrap();
            assert!(bad
                .preorder()
                .iter()
                .any(|&n| bad.alphabet().name(bad.symbol(n)) == "group"
                    && bad.children(n).is_empty()));
        }
        TypecheckOutcome::Ok => panic!("empty shelves violate entry+"),
    }
}

fn fixture(name: &str) -> String {
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Runs one committed fixture triple through the document pipeline with a
/// given engine; returns the verdict.
fn run_fixture(dtd: &str, xsl: &str, out_dtd: &str, engine: Engine) -> DocumentVerdict {
    let dtd = Dtd::parse_text(&fixture(dtd)).unwrap();
    let sheet = Stylesheet::parse_text(&fixture(xsl)).unwrap();
    let pipeline = DocumentPipeline::new(sheet, dtd).unwrap();
    let opts = TypecheckOptions {
        engine,
        ..Default::default()
    };
    pipeline
        .typecheck_against_with(&fixture(out_dtd), &opts)
        .unwrap()
}

/// Golden regression for the edge-case fixtures: the empty output type,
/// the universal output type, and the single-symbol alphabet — each
/// decided identically by both emptiness engines.
#[test]
fn edge_case_fixtures_agree_across_engines() {
    for engine in [Engine::Lazy, Engine::Eager] {
        // Empty τ₂: no output document conforms, so every valid input is
        // a counterexample — even the childless root.
        match run_fixture("any_a.dtd", "relabel.xsl", "empty_out.dtd", engine) {
            DocumentVerdict::CounterExample { input, bad_output } => {
                assert_eq!(input.name, "root", "{engine:?}");
                let bad = bad_output.expect("bad output against empty type");
                assert_eq!(bad.name, "result", "{engine:?}");
            }
            DocumentVerdict::Ok => panic!("{engine:?}: empty output type cannot be satisfied"),
        }

        // Universal τ₂: every output conforms, so the check passes.
        assert!(
            run_fixture("any_a.dtd", "relabel.xsl", "universal_out.dtd", engine).is_ok(),
            "{engine:?}: universal output type accepts everything"
        );

        // Single-symbol alphabet, identity transform: conforming spec
        // passes, empty-language spec fails on every input.
        assert!(
            run_fixture("single.dtd", "single.xsl", "single_out.dtd", engine).is_ok(),
            "{engine:?}: identity into the same single-symbol DTD"
        );
        match run_fixture("single.dtd", "single.xsl", "single_out_strict.dtd", engine) {
            DocumentVerdict::CounterExample { input, .. } => {
                assert_eq!(input.name, "s", "{engine:?}");
            }
            DocumentVerdict::Ok => panic!("{engine:?}: strict single-symbol spec is empty"),
        }
    }
}
