//! End-to-end over the concrete XML syntax: parse → validate → transform →
//! serialize → typecheck, across every crate in the workspace.

use xmltc::dtd::Dtd;
use xmltc::trees::{decode, encode};
use xmltc::typecheck::{typecheck, TypecheckOptions, TypecheckOutcome};
use xmltc::xml::{parse_document, raw_to_xml, to_xml};
use xmltc::xmlql::{Stylesheet, Template};

fn library_dtd() -> Dtd {
    Dtd::parse_text(
        "library := shelf*
         shelf := book*
         book := @eps",
    )
    .unwrap()
}

fn flattener() -> Stylesheet {
    // Flatten: a catalog of every book, shelves erased.
    Stylesheet::new(vec![
        Template::parse("library", "catalog(@apply)").unwrap(),
        Template::parse("shelf", "group(@apply)").unwrap(),
        Template::parse("book", "entry").unwrap(),
    ])
}

#[test]
fn parse_validate_transform_serialize() {
    let dtd = library_dtd();
    let doc = parse_document(
        "<library><shelf><book/><book/></shelf><shelf/><shelf><book/></shelf></library>",
        dtd.alphabet(),
    )
    .unwrap();
    dtd.validate(&doc).unwrap();
    assert_eq!(
        to_xml(&doc),
        "<library><shelf><book/><book/></shelf><shelf/><shelf><book/></shelf></library>"
    );

    let sheet = flattener();
    // Interpreter and compiled machine agree; serialize the result.
    let expected = sheet.apply(&doc).unwrap();
    let (t, enc_in, enc_out) = sheet.compile(dtd.alphabet()).unwrap();
    let out = xmltc::core::eval(&t, &encode(&doc, &enc_in).unwrap()).unwrap();
    let decoded = decode(&out, &enc_out).unwrap();
    assert_eq!(decoded.to_raw(), expected);
    assert_eq!(
        raw_to_xml(&expected),
        "<catalog><group><entry/><entry/></group><group/><group><entry/></group></catalog>"
    );
}

#[test]
fn typecheck_the_flattener() {
    let dtd = library_dtd();
    let sheet = flattener();
    let (t, enc_in, enc_out) = sheet.compile(dtd.alphabet()).unwrap();
    let tau1 = dtd.compile(&enc_in).unwrap();

    // Correct spec: a catalog of groups of entries.
    let good = Dtd::parse_text_with(
        "catalog := group*
         group := entry*
         entry := @eps",
        enc_out.source(),
    )
    .unwrap()
    .compile(&enc_out)
    .unwrap();
    assert!(typecheck(&t, &tau1, &good, &TypecheckOptions::default())
        .unwrap()
        .is_ok());

    // Wrong spec: every group must be nonempty — empty shelves break it.
    let wrong = Dtd::parse_text_with(
        "catalog := group*
         group := entry+
         entry := @eps",
        enc_out.source(),
    )
    .unwrap()
    .compile(&enc_out)
    .unwrap();
    match typecheck(&t, &tau1, &wrong, &TypecheckOptions::default()).unwrap() {
        TypecheckOutcome::CounterExample { input, bad_output } => {
            let doc = decode(&input, &enc_in).unwrap();
            // The offending input must contain an empty shelf.
            let has_empty_shelf = doc.preorder().iter().any(|&n| {
                doc.alphabet().name(doc.symbol(n)) == "shelf" && doc.children(n).is_empty()
            });
            assert!(
                has_empty_shelf,
                "counterexample {doc} must have an empty shelf"
            );
            let bad = decode(&bad_output.unwrap(), &enc_out).unwrap();
            assert!(bad
                .preorder()
                .iter()
                .any(|&n| bad.alphabet().name(bad.symbol(n)) == "group"
                    && bad.children(n).is_empty()));
        }
        TypecheckOutcome::Ok => panic!("empty shelves violate entry+"),
    }
}
