//! Witness extraction on the edge fixtures, in both engines, with the
//! replay contract enforced: every counterexample either engine reports
//! must re-execute through the real transducer and fail output
//! validation. The fixtures cover the degenerate output types — the
//! empty language (everything is a counterexample), the universal
//! language (nothing is), and a single-symbol alphabet.

use std::path::PathBuf;
use xmltc::dtd::Dtd;
use xmltc::obs::Json;
use xmltc::typecheck::{Engine, TypecheckOptions};
use xmltc::xmlql::{DocumentPipeline, Stylesheet};

fn fixture(name: &str) -> String {
    let p = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("fixture {name}: {e}"))
}

fn pipeline(dtd: &str, xsl: &str) -> DocumentPipeline {
    let dtd = Dtd::parse_text(&fixture(dtd)).unwrap();
    let sheet = Stylesheet::parse_text(&fixture(xsl)).unwrap();
    DocumentPipeline::new(sheet, dtd).unwrap()
}

fn opts(engine: Engine) -> TypecheckOptions {
    TypecheckOptions {
        engine,
        ..TypecheckOptions::default()
    }
}

/// Runs `explain` for one fixture triple under one engine and returns the
/// report after asserting the replay contract on failing verdicts.
fn check(dtd: &str, xsl: &str, out_dtd: &str, engine: Engine, expect_ok: bool) {
    let name = format!(
        "{dtd}+{xsl}+{out_dtd} [{}]",
        if matches!(engine, Engine::Eager) {
            "eager"
        } else {
            "lazy"
        }
    );
    let p = pipeline(dtd, xsl);
    let (verdict, report) = p
        .explain_against_with(&fixture(out_dtd), &opts(engine))
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    assert_eq!(verdict.is_ok(), expect_ok, "{name}");
    assert_eq!(report.is_ok(), expect_ok, "{name}");
    if expect_ok {
        assert!(report.input.is_none(), "{name}: ok report must be bare");
        return;
    }
    // The counterexample must carry its full provenance chain...
    let input = report.input.as_ref().expect("input recorded");
    assert!(!input.term.is_empty(), "{name}");
    let transform = report.transform.as_ref().expect("run recorded");
    assert!(transform.total_steps > 0, "{name}");
    assert!(report.output.is_some(), "{name}: bad output recorded");
    assert!(report.violation.is_some(), "{name}: violation diagnosed");
    // ...and the replay verifier must independently confirm every leg.
    let replay = report.replay.as_ref().expect("replay recorded");
    assert!(
        replay.verified(),
        "{name}: replay not confirmed: {replay:?}"
    );
    // The JSON form carries the confirmation too.
    assert_eq!(
        report.to_json().at("replay.verified"),
        Some(&Json::Bool(true)),
        "{name}"
    );
}

#[test]
fn empty_output_type_everything_is_a_counterexample() {
    // `result := result` has the empty language: even the childless
    // input's output violates it.
    for engine in [Engine::Lazy, Engine::Eager] {
        check("any_a.dtd", "relabel.xsl", "empty_out.dtd", engine, false);
    }
}

#[test]
fn universal_output_type_always_typechecks() {
    for engine in [Engine::Lazy, Engine::Eager] {
        check(
            "any_a.dtd",
            "relabel.xsl",
            "universal_out.dtd",
            engine,
            true,
        );
    }
}

#[test]
fn single_symbol_alphabet_both_verdicts() {
    for engine in [Engine::Lazy, Engine::Eager] {
        // Identity image vs. itself: typechecks.
        check("single.dtd", "single.xsl", "single_out.dtd", engine, true);
        // Empty single-symbol spec: nothing conforms.
        check(
            "single.dtd",
            "single.xsl",
            "single_out_strict.dtd",
            engine,
            false,
        );
    }
}

#[test]
fn q2_mod2_variant_fails_with_verified_replay() {
    for engine in [Engine::Lazy, Engine::Eager] {
        check("q2.dtd", "q2.xsl", "q2_mod2_out.dtd", engine, false);
    }
}

/// The eager and lazy witnesses may differ, but the annotated reports are
/// each internally consistent and name their engine.
#[test]
fn reports_name_their_engine() {
    for (engine, name) in [(Engine::Lazy, "lazy"), (Engine::Eager, "eager")] {
        let p = pipeline("any_a.dtd", "relabel.xsl");
        let (_, report) = p
            .explain_against_with(&fixture("even_b.dtd"), &opts(engine))
            .unwrap();
        assert_eq!(report.engine, name);
        assert_eq!(report.route, "walk");
    }
}
