//! **Example 4.3 end-to-end**: the XSLT query Q2 maps `root(aⁿ)` to
//! `result(b aⁿ b aⁿ b aⁿ)` — an image that is not regular (the three `aⁿ`
//! runs must agree), so forward type inference must over-approximate.
//!
//! Q2 compiles to a **1-pebble** transducer, so the *exact* typechecking
//! pipeline runs through the fast behaviour-composition route
//! (Theorem 4.7, k = 1), and we can demonstrate the paper's precision
//! story concretely:
//!
//! * `τ₂` = "the result's children count is divisible by 3" holds for
//!   every actual output (3n + 3 children) → the exact typechecker
//!   **accepts**;
//! * the forward-inference baseline decouples the three `apply-templates`
//!   (image ≈ `b a* b a* b a*`) and **rejects** the correct program with a
//!   spurious witness.

use xmltc_dtd::Dtd;
use xmltc_trees::{decode, encode, EncodedAlphabet};
use xmltc_typecheck::{typecheck, TypecheckOptions, TypecheckOutcome};
use xmltc_xmlql::xslt::example_q2;

fn setup() -> (
    xmltc_core::PebbleTransducer,
    EncodedAlphabet,
    EncodedAlphabet,
    xmltc_automata::Nta, // τ₁ = encodings of root := a*
) {
    let q2 = example_q2();
    let input_dtd = Dtd::parse_text("root := a*\na := @eps").unwrap();
    let (t, enc_in, enc_out) = q2.compile(input_dtd.alphabet()).unwrap();
    let tau1 = input_dtd.compile(&enc_in).unwrap();
    (t, enc_in, enc_out, tau1)
}

/// The forward-inference baseline's over-approximate image of Q2, as a
/// tree automaton over the encoded output alphabet.
fn q2_forward_image(enc_out: &EncodedAlphabet) -> xmltc_automata::Nta {
    let q2 = example_q2();
    let input_dtd = Dtd::parse_text("root := a*\na := @eps").unwrap();
    let image = q2
        .infer_image(&input_dtd, enc_out.source())
        .expect("inference succeeds");
    image.compile(enc_out).expect("image compiles")
}

#[test]
fn q2_is_one_pebble() {
    let (t, _, _, _) = setup();
    assert_eq!(t.k(), 1);
}

#[test]
fn exact_typechecker_accepts_mod3_spec() {
    let (t, _enc_in, enc_out, tau1) = setup();
    // result := ((a|b).(a|b).(a|b))* — children count ≡ 0 (mod 3).
    let tau2 = Dtd::parse_text_with(
        "result := ((a|b).(a|b).(a|b))*\na := @eps\nb := @eps",
        enc_out.source(),
    )
    .unwrap()
    .compile(&enc_out)
    .unwrap();
    let outcome = typecheck(&t, &tau1, &tau2, &TypecheckOptions::default()).unwrap();
    assert!(outcome.is_ok(), "every output has 3n+3 children");
}

#[test]
fn forward_baseline_rejects_mod3_spec() {
    let (t, _enc_in, enc_out, tau1) = setup();
    let tau2 = Dtd::parse_text_with(
        "result := ((a|b).(a|b).(a|b))*\na := @eps\nb := @eps",
        enc_out.source(),
    )
    .unwrap()
    .compile(&enc_out)
    .unwrap();
    let image = q2_forward_image(&enc_out);
    let _ = t;
    let _ = tau1;
    // Forward method: prove image ⊆ τ₂. The decoupled image contains
    // b aⁱ b aʲ b aᵏ for arbitrary i, j, k — so inclusion fails and the
    // baseline rejects the (correct!) program with a spurious witness.
    let witness = image
        .inclusion_counterexample(&tau2)
        .expect("the decoupling over-approximation cannot prove the mod-3 spec");
    let dec = decode(&witness, &enc_out).expect("witness decodes");
    let kids = dec.children(dec.root()).len();
    assert_ne!(kids % 3, 0, "witness must violate the mod-3 spec");
    // And it is spurious: real outputs all satisfy the spec (proved by the
    // exact route in `exact_typechecker_accepts_mod3_spec`).
}

#[test]
fn both_accept_coarse_spec() {
    // A spec the over-approximate image also satisfies: exactly three b's,
    // in the pattern b.a*.b.a*.b.a*.
    let (t, _enc_in, enc_out, tau1) = setup();
    let tau2 = Dtd::parse_text_with(
        "result := b.a*.b.a*.b.a*\na := @eps\nb := @eps",
        enc_out.source(),
    )
    .unwrap()
    .compile(&enc_out)
    .unwrap();
    assert!(typecheck(&t, &tau1, &tau2, &TypecheckOptions::default())
        .unwrap()
        .is_ok());
    // The coarse spec is provable even from the decoupled image.
    let image = q2_forward_image(&enc_out);
    assert!(image.subset_of(&tau2));
}

#[test]
fn exact_typechecker_rejects_wrong_spec_with_counterexample() {
    // τ₂ demanding at most one b: fails; the counterexample input must be
    // a valid document and its output must really violate the spec.
    let (t, enc_in, enc_out, tau1) = setup();
    let tau2 = Dtd::parse_text_with("result := a*.b?.a*\na := @eps\nb := @eps", enc_out.source())
        .unwrap()
        .compile(&enc_out)
        .unwrap();
    match typecheck(&t, &tau1, &tau2, &TypecheckOptions::default()).unwrap() {
        TypecheckOutcome::CounterExample { input, bad_output } => {
            assert!(tau1.accepts(&input).unwrap());
            let doc = decode(&input, &enc_in).expect("valid encoding");
            // Cross-check: the transducer's actual output on this input
            // violates τ₂.
            let encoded = encode(&doc, &enc_in).unwrap();
            let out = xmltc_core::eval(&t, &encoded).unwrap();
            assert!(!tau2.accepts(&out).unwrap());
            let bad = bad_output.expect("bad output extracted");
            assert!(!tau2.accepts(&bad).unwrap());
        }
        TypecheckOutcome::Ok => panic!("must fail: outputs have three b's"),
    }
}

#[test]
fn inverse_type_inference_mirrors_example_42() {
    // Inverse inference at k = 1: with τ₂ = "children count is even"
    // (outputs have 3n+3 children, even iff n odd), the inverse type
    // restricted to valid inputs is exactly the odd-a documents.
    let (t, enc_in, enc_out, tau1) = setup();
    let tau2 = Dtd::parse_text_with(
        "result := ((a|b).(a|b))*\na := @eps\nb := @eps",
        enc_out.source(),
    )
    .unwrap()
    .compile(&enc_out)
    .unwrap();
    let inverse = xmltc_typecheck::inverse_type(&t, &tau2, &TypecheckOptions::default()).unwrap();
    let al = enc_in.source().clone();
    for n in 0..7usize {
        let doc =
            xmltc_trees::generate::flat(al.get("root").unwrap(), al.get("a").unwrap(), n, &al)
                .unwrap();
        let encoded = encode(&doc, &enc_in).unwrap();
        assert!(tau1.accepts(&encoded).unwrap());
        assert_eq!(
            inverse.accepts(&encoded).unwrap(),
            n % 2 == 1,
            "T(a^{n}) has {} children; even iff n odd",
            3 * n + 3
        );
    }
}
