//! Section 5 "Data Values": typechecking transducers that test unary
//! predicates on data values, via the signature-constants abstraction.
//!
//! Scenario: documents are lists of persons, each carrying an age value.
//! The transformation copies adults (`age ≥ 18`) into an `adults` list and
//! minors into a `minors` list — a selection with unary predicates, no
//! joins. We typecheck it *exactly* over every possible value assignment:
//! "every entry under `adults` satisfies the predicate" holds; the
//! converse spec fails with a counterexample.
//!
//! (The input here is already in binary-encoded shape; the abstraction is
//! orthogonal to the unranked encoding.)

use std::sync::Arc;
use xmltc::automata::{Nta, State};
use xmltc::core::data::{DataAbstraction, UnaryPredicates};
use xmltc::core::machine::{Guard, Move, SymSpec};
use xmltc::dsl::{MachineSpec, Syms};
use xmltc::trees::Alphabet;
use xmltc::typecheck::{typecheck, TypecheckOptions, TypecheckOutcome};

/// Input alphabet (pre-abstraction): a right-list of person leaves.
/// Encoded shape: list = cons(person-value, list) | end.
fn setup() -> (Arc<Alphabet>, DataAbstraction, UnaryPredicates<i64>) {
    let base = Alphabet::ranked(&["person", "end"], &["cons"]);
    let mut preds = UnaryPredicates::new();
    preds.add("adult", |age: &i64| *age >= 18);
    let abs = DataAbstraction::build(&base, "person", &preds);
    (base, abs, preds)
}

/// Output alphabet: split(adults-list, minors-list) with the same
/// signature leaves, plus list cons/end.
fn output_alphabet(abs: &DataAbstraction) -> Arc<Alphabet> {
    let mut b = xmltc::trees::AlphabetBuilder::new();
    let al = abs.alphabet();
    for s in al.symbols() {
        b.add(al.name(s), al.rank(s));
    }
    b.add("split", xmltc::trees::Rank::Binary);
    b.finish()
}

/// The splitter: walks the input list twice — once keeping adults, once
/// keeping minors — copying data values (signature-exactly) to the output.
fn splitter(abs: &DataAbstraction, out_al: &Arc<Alphabet>) -> xmltc::core::PebbleTransducer {
    let in_al = abs.alphabet();

    let mut m = MachineSpec::new("splitter", 1);
    m.state("start", 1)
        .state("adults", 1)
        .state("minors", 1)
        .state("a_emit", 1)
        .state("m_emit", 1)
        .state("a_next", 1)
        .state("m_next", 1)
        .initial("start");
    m.emit_node(
        Syms::Any,
        "start",
        Guard::any(),
        "split",
        "adults",
        "minors",
    );

    for (walk, emit, next, pred_val) in [
        ("adults", "a_emit", "a_next", true),
        ("minors", "m_emit", "m_next", false),
    ] {
        // At a cons cell: peek the person (left child) — if it matches the
        // predicate, emit a cons with the copied value; otherwise skip.
        m.walk(Syms::one("cons"), walk, Guard::any(), Move::DownLeft, emit);
        // Keep: copy the value (exact at signature level) and continue.
        for &sig_sym in abs.data_symbols() {
            let spec_matches = match abs.sym_if(0, pred_val) {
                SymSpec::AnyOf(v) => v.contains(&sig_sym),
                _ => unreachable!(),
            };
            if spec_matches {
                // value leaf output: out alphabet shares symbol names; ids
                // match because out_al extends in_al in order.
                let sig_name = in_al.name(sig_sym).to_string();
                let copy = format!("copy_{sig_name}_{pred_val}");
                m.state(&copy, 1);
                m.emit_node(
                    Syms::one(&sig_name),
                    emit,
                    Guard::any(),
                    "cons",
                    &copy,
                    next,
                );
                m.emit_leaf(Syms::one(&sig_name), &copy, Guard::any(), &sig_name);
            }
        }
        // Skip: move back up and on.
        m.walk(
            Syms::from_symspec(&abs.sym_if(0, !pred_val), in_al),
            emit,
            Guard::any(),
            Move::UpLeft,
            next,
        );
        // next: from the person leaf (after keep) or cons (after skip),
        // advance to the tail.
        m.walk(
            Syms::from_symspec(&abs.sym_any_data(), in_al),
            next,
            Guard::any(),
            Move::UpLeft,
            next,
        );
        m.walk(Syms::one("cons"), next, Guard::any(), Move::DownRight, walk);
        m.emit_leaf(Syms::one("end"), walk, Guard::any(), "end");
    }
    m.build_transducer(in_al, out_al).unwrap()
}

/// τ₁: any person list. τ₂ builder: adult lists on the left, any/minor
/// lists on the right, configurable.
fn list_type(al: &Arc<Alphabet>, leaf_pred: impl Fn(&str) -> bool, sym_names: &[&str]) -> Nta {
    // state 0 = valid list; leaves allowed per pred.
    let mut a = Nta::new(al, 2);
    let cons = al.get("cons").unwrap();
    let end = al.get("end").unwrap();
    a.add_leaf(end, State(0));
    for &n in sym_names {
        if leaf_pred(n) {
            if let Some(s) = al.get(n) {
                a.add_leaf(s, State(1));
            }
        }
    }
    a.add_node(cons, State(1), State(0), State(0));
    a.add_final(State(0));
    a
}

#[test]
fn splitter_typechecks_over_all_values() {
    let (_base, abs, _preds) = setup();
    let out_al = output_alphabet(&abs);
    let t = splitter(&abs, &out_al);

    // τ₁: any input list.
    let tau1 = {
        let al = abs.alphabet().clone();
        list_type(&al, |_| true, &["person@0", "person@1"])
    };
    // τ₂: split(adult-only list, minor-only list).
    let tau2 = {
        let adults = list_type(&out_al, |n| n == "person@1", &["person@0", "person@1"]);
        let minors = list_type(&out_al, |n| n == "person@0", &["person@0", "person@1"]);
        // split(adults, minors) rooted automaton: product-free composition.
        let mut a = adults.union(&minors);
        // adult-final = 0 within `adults` block; minor-final offset.
        // Simpler: rebuild with a fresh root transition.
        let split = out_al.get("split").unwrap();
        let root = a.add_state();
        // finals of the union: one from each operand — connect via split.
        let finals: Vec<State> = a.finals().iter().collect();
        assert_eq!(finals.len(), 2);
        a.add_node(split, finals[0], finals[1], root);
        // Which final is the adults one? The union puts `adults` first
        // (offset 0): finals[0] < finals[1] iff it came from `adults`.
        let mut a2 = a.clone();
        // Keep only the composite root as final.
        let mut rebuilt = Nta::new(&out_al, a.n_states());
        for (sym, q) in a.leaf_transitions() {
            rebuilt.add_leaf(sym, q);
        }
        for (sym, q1, q2, q) in a.node_transitions() {
            rebuilt.add_node(sym, q1, q2, q);
        }
        rebuilt.add_final(root);
        let _ = &mut a2;
        rebuilt
    };

    match typecheck(&t, &tau1, &tau2, &TypecheckOptions::default()).unwrap() {
        TypecheckOutcome::Ok => {}
        TypecheckOutcome::CounterExample { input, bad_output } => {
            panic!("splitter must typecheck; cex input {input} output {bad_output:?}")
        }
    }

    // Swapped spec — split(minors, adults) — must fail, with a concrete
    // input whose adult entry lands on the wrong side.
    let tau2_swapped = {
        let adults = list_type(&out_al, |n| n == "person@1", &["person@0", "person@1"]);
        let minors = list_type(&out_al, |n| n == "person@0", &["person@0", "person@1"]);
        let mut a = minors.union(&adults);
        let split = out_al.get("split").unwrap();
        let root = a.add_state();
        let finals: Vec<State> = a.finals().iter().collect();
        let mut rebuilt = Nta::new(&out_al, a.n_states());
        for (sym, q) in a.leaf_transitions() {
            rebuilt.add_leaf(sym, q);
        }
        for (sym, q1, q2, q) in a.node_transitions() {
            rebuilt.add_node(sym, q1, q2, q);
        }
        rebuilt.add_node(split, finals[0], finals[1], root);
        rebuilt.add_final(root);
        rebuilt
    };
    match typecheck(&t, &tau1, &tau2_swapped, &TypecheckOptions::default()).unwrap() {
        TypecheckOutcome::CounterExample { input, .. } => {
            // The counterexample must contain at least one person.
            assert!(input.len() > 1, "counterexample {input}");
        }
        TypecheckOutcome::Ok => panic!("swapped spec cannot hold"),
    }
}

#[test]
fn concrete_values_flow_through_abstraction() {
    use xmltc::core::data::{abstract_leaves, LeafContent};
    let (base, abs, preds) = setup();
    let out_al = output_alphabet(&abs);
    let t = splitter(&abs, &out_al);

    // Concrete list [25, 7, 40]: shape cons(person, cons(person,
    // cons(person, end))) with values attached.
    let shape =
        xmltc::trees::BinaryTree::parse("cons(person, cons(person, cons(person, end)))", &base)
            .unwrap();
    let person = base.get("person").unwrap();
    let values = [25i64, 7, 40];
    let mut next_value = 0usize;
    // Arena order: builder creates leaves/nodes bottom-up; find persons in
    // pre-order for deterministic assignment.
    let pre: Vec<_> = shape.preorder().collect();
    let mut assigned = std::collections::HashMap::new();
    for &n in &pre {
        if shape.symbol(n) == person {
            assigned.insert(n, values[next_value]);
            next_value += 1;
        }
    }
    let abstracted = abstract_leaves(&shape, &abs, &preds, |n| match assigned.get(&n) {
        Some(v) => LeafContent::Value(*v),
        None => LeafContent::Symbol(base.name(shape.symbol(n)).to_string()),
    })
    .unwrap();

    let out = xmltc::core::eval(&t, &abstracted).unwrap();
    // Adults list: two person@1 entries; minors: one person@0.
    let printed = out.to_string();
    assert_eq!(
        printed,
        "split(cons(person@1, cons(person@1, end)), cons(person@0, end))"
    );
}
