//! Determinism of the parallel Theorem 4.7 walk construction: for the
//! seeded random (stylesheet, output spec) triples the differential suite
//! draws from, the DBTA built with a parallel frontier must be
//! byte-identical — state numbering, leaf/node transition maps, finals —
//! to the `--threads 1` build, with identical construction counters. Also
//! the `TooManyStates` regression: the class budget must abort at the
//! same canonical point at every thread count.

use xmltc::dtd::Dtd;
use xmltc::trees::SmallRng;
use xmltc::typecheck::walk::{walking_to_dbta_limited, walking_to_dbta_with, WalkOptions};
use xmltc::typecheck::{violation_automaton, TypecheckError};
use xmltc::xmlql::{Stylesheet, Template};

/// Template bodies for the `root` tag (the differential-suite pool).
const ROOT_BODIES: [&str; 4] = [
    "out(@apply)",
    "out(b, @apply)",
    "out(@apply, @apply)",
    "out",
];

/// Template bodies for the `a` tag.
const A_BODIES: [&str; 4] = ["a", "b", "a(@apply)", "b(@apply, b)"];

/// Output content models for `out` (the `τ₂` pool).
const SPECS: [&str; 6] = ["(a|b)*", "b*", "b.(a|b)*", "a*", "b?.(a|b)*", "@empty"];

/// Compiles one (stylesheet, spec) combo into its trimmed 1-pebble
/// violation automaton — the exact machine the walk route receives.
fn violation(root_body: &str, a_body: &str, spec: &str) -> xmltc::core::machine::PebbleAutomaton {
    let sheet = Stylesheet::new(vec![
        Template::parse("root", root_body).unwrap(),
        Template::parse("a", a_body).unwrap(),
    ]);
    let probe_dtd = Dtd::parse_text("root := a*\na := a*").unwrap();
    let (t, _enc_in, enc_out) = sheet.compile(probe_dtd.alphabet()).unwrap();
    let out_src = enc_out.source();
    // Tags the stylesheet can never output become `@empty` in the model.
    let mut spec_text = spec.to_string();
    let avail: Vec<&str> = ["a", "b"]
        .into_iter()
        .filter(|t| out_src.get(t).is_some())
        .collect();
    let mut lines = Vec::new();
    for tag in ["a", "b"] {
        if avail.contains(&tag) {
            lines.push(format!("{tag} := ({})*", avail.join("|")));
        } else {
            spec_text = spec_text.replace(tag, "@empty");
        }
    }
    lines.insert(0, format!("out := {spec_text}"));
    let tau2 = Dtd::parse_text_with(&lines.join("\n"), out_src)
        .unwrap()
        .compile(&enc_out)
        .unwrap();
    violation_automaton(&t, &tau2).unwrap().trim_states()
}

#[test]
fn parallel_build_is_byte_identical() {
    let mut rng = SmallRng::seed_from_u64(0x4703);
    for case in 0..16 {
        let ri = rng.gen_range(0..ROOT_BODIES.len());
        let ai = rng.gen_range(0..A_BODIES.len());
        let si = rng.gen_range(0..SPECS.len());
        let v = violation(ROOT_BODIES[ri], A_BODIES[ai], SPECS[si]);
        let seq = WalkOptions {
            threads: 1,
            ..Default::default()
        };
        let (d1, s1) = walking_to_dbta_with(&v, &seq).unwrap();
        for threads in [2, 4] {
            // parallel_threshold 1 forces the worker crew even for these
            // small frontiers (the default gate would run them
            // sequentially — see walk::PARALLEL_JOB_THRESHOLD), keeping
            // the parallel path itself under test.
            let par = WalkOptions {
                threads,
                parallel_threshold: 1,
                ..Default::default()
            };
            let (dn, sn) = walking_to_dbta_with(&v, &par).unwrap();
            assert_eq!(
                d1, dn,
                "case {case} ({ri},{ai},{si}): DBTA differs at {threads} threads"
            );
            assert_eq!(
                (s1.pairs, s1.compositions, s1.memo_hits, s1.dbta_states),
                (sn.pairs, sn.compositions, sn.memo_hits, sn.dbta_states),
                "case {case} ({ri},{ai},{si}): counters differ at {threads} threads"
            );
            assert_eq!(sn.threads, threads as u64);
        }
    }
}

/// The scaled walk-scale family under the worker crew: the seeded
/// generator's saturated frontier (460 behaviour classes, ~5.5k distinct
/// jobs) replayed at 2 and 8 threads with a deliberately tiny chunk, so
/// steal boundaries land mid-round. The closure is size-invariant by
/// construction — every `ws-*` size shares one core machine — so the
/// smallest member exercises the identical frontier the bench's largest
/// instance does, at debug-build-friendly cost.
#[test]
fn scaled_family_build_is_byte_identical() {
    let al = xmltc::bench::scaled::scaled_alphabet();
    let a = xmltc::bench::scaled::scaled_walker(&al, 48, 0xA11CE);
    let seq = WalkOptions {
        threads: 1,
        ..Default::default()
    };
    let (d1, s1) = walking_to_dbta_with(&a, &seq).unwrap();
    assert!(
        s1.memo_misses > 1_000,
        "scaled frontier must stay saturated under projected memoization"
    );
    for threads in [2, 8] {
        let par = WalkOptions {
            threads,
            parallel_threshold: 1,
            chunk: 3,
            ..Default::default()
        };
        let (dn, sn) = walking_to_dbta_with(&a, &par).unwrap();
        assert_eq!(d1, dn, "scaled DBTA differs at {threads} threads");
        assert_eq!(
            (s1.pairs, s1.compositions, s1.memo_hits, s1.dbta_states),
            (sn.pairs, sn.compositions, sn.memo_hits, sn.dbta_states),
            "scaled counters differ at {threads} threads"
        );
    }
}

/// The measured job-count gate: `--threads auto` must never lose to
/// sequential on small instances, so frontiers below
/// [`PARALLEL_JOB_THRESHOLD`] stay on the sequential path even when
/// worker threads were requested — and forcing the crew anyway (threshold
/// 1) still builds the identical DBTA.
#[test]
fn job_count_gate_keeps_small_frontiers_sequential() {
    use xmltc::typecheck::walk::PARALLEL_JOB_THRESHOLD;
    let v = violation(ROOT_BODIES[1], A_BODIES[3], SPECS[2]);
    let gated = WalkOptions {
        threads: 4,
        ..Default::default()
    };
    let (dg, sg) = walking_to_dbta_with(&v, &gated).unwrap();
    assert_eq!(
        sg.parallel_batches, 0,
        "small frontiers must not fan out under the default gate"
    );
    assert_eq!(sg.parallel_threshold, PARALLEL_JOB_THRESHOLD as u64);
    let forced = WalkOptions {
        threads: 4,
        parallel_threshold: 1,
        ..Default::default()
    };
    let (df, sf) = walking_to_dbta_with(&v, &forced).unwrap();
    assert!(
        sf.parallel_batches > 0,
        "threshold 1 must exercise the worker crew"
    );
    assert_eq!(dg, df, "the gate must not change the constructed DBTA");
}

#[test]
fn too_many_states_aborts_identically_at_any_thread_count() {
    // A combo whose construction needs a handful of classes.
    let v = violation(ROOT_BODIES[1], A_BODIES[3], SPECS[2]);
    let full = walking_to_dbta_limited(&v, u32::MAX).unwrap().n_states();
    assert!(full > 2, "fixture must need several behaviour classes");
    for limit in 1..full {
        let err = |threads: usize| {
            let opts = WalkOptions {
                limit,
                threads,
                parallel_threshold: 1,
                chunk: 1,
            };
            match walking_to_dbta_with(&v, &opts) {
                Err(TypecheckError::TooManyStates { n }) => n,
                other => {
                    panic!("limit {limit}, {threads} threads: expected budget abort, got {other:?}")
                }
            }
        };
        let n1 = err(1);
        assert_eq!(n1, limit + 1, "abort reports the first class over budget");
        assert_eq!(n1, err(4), "limit {limit}: abort differs across threads");
    }
    // At the exact budget the construction completes again.
    assert_eq!(walking_to_dbta_limited(&v, full).unwrap().n_states(), full);
}
