//! **Example 4.2 end-to-end**: query Q1 maps documents `root(aⁿ)` (DTD
//! `root := a*`) to `result(bⁿ²)`. The image `{bⁿ²}` is not regular, so
//! forward type inference cannot be exact; inverse reasoning works: the
//! inputs whose outputs satisfy the even-`b` DTD `(b.b)*` are exactly the
//! even-`a` documents `(a.a)*`.
//!
//! Q1 compiles to a 3-pebble transducer, so the exact Theorem 4.7 pipeline
//! would go through the non-elementary MSO route; here we certify the
//! example's claims on all documents up to `a⁸` using the exact per-input
//! Proposition 3.8 check (see EXPERIMENTS.md E5/E9 for the blow-up story).

use xmltc_core::eval::{self, output_automaton};
use xmltc_dtd::Dtd;
use xmltc_trees::{decode, encode, generate, UnrankedTree};
use xmltc_xmlql::query::example_q1;

fn doc(al: &std::sync::Arc<xmltc_trees::Alphabet>, n: usize) -> UnrankedTree {
    generate::flat(al.get("root").unwrap(), al.get("a").unwrap(), n, al).unwrap()
}

#[test]
fn q1_maps_a_n_to_b_n_squared() {
    let (q, al) = example_q1();
    let (t, enc_in, enc_out) = q.compile().unwrap();
    for n in 0..5usize {
        let input = doc(&al, n);
        let encoded = encode(&input, &enc_in).unwrap();
        let out = eval::eval(&t, &encoded).unwrap();
        let decoded = decode(&out, &enc_out).unwrap();
        assert_eq!(
            decoded.children(decoded.root()).len(),
            n * n,
            "a^{n} must map to b^(n²)"
        );
        assert_eq!(
            enc_out.source().name(decoded.symbol(decoded.root())),
            "result"
        );
    }
}

#[test]
fn inverse_of_even_b_is_even_a() {
    // For each n ≤ 8: T(aⁿ) ⊆ (b.b)*-outputs iff n is even — the paper's
    // "(a.a)* is the inverse type of (b.b)*" claim, certified pointwise
    // with the exact Prop 3.8 automaton and regular-language inclusion.
    let (q, al) = example_q1();
    let (t, enc_in, enc_out) = q.compile().unwrap();
    // Output type: result := (b.b)* over the transducer's output alphabet.
    let out_dtd = Dtd::parse_text_with("result := (b.b)*\nb := @eps", enc_out.source()).unwrap();
    let tau2 = out_dtd.compile(&enc_out).unwrap();
    for n in 0..=8usize {
        let input = doc(&al, n);
        let encoded = encode(&input, &enc_in).unwrap();
        let out_lang = output_automaton(&t, &encoded).unwrap().to_nta();
        let violates = !out_lang.intersect(&tau2.complement().to_nta()).is_empty();
        assert_eq!(
            violates,
            n % 2 == 1,
            "T(a^{n}) ⊆ (b.b)* should hold iff n even"
        );
    }
}

#[test]
fn bounded_typecheck_distinguishes_input_types() {
    // Bounded exhaustive typechecking over τ₁ = (a.a)* inputs passes; over
    // τ₁ = a* it finds the counterexample a¹.
    let (q, _al) = example_q1();
    let (t, enc_in, enc_out) = q.compile().unwrap();
    let even_inputs = Dtd::parse_text_with("root := (a.a)*\na := @eps", enc_in.source())
        .unwrap()
        .compile(&enc_in)
        .unwrap();
    let all_inputs = Dtd::parse_text_with("root := a*\na := @eps", enc_in.source())
        .unwrap()
        .compile(&enc_in)
        .unwrap();
    let tau2 = Dtd::parse_text_with("result := (b.b)*\nb := @eps", enc_out.source())
        .unwrap()
        .compile(&enc_out)
        .unwrap();

    // Depth bound 12 covers root(a⁴) encodings (spine depth n+2).
    match xmltc_typecheck::bounded::bounded_typecheck(&t, &even_inputs, &tau2, 8, 200).unwrap() {
        xmltc_typecheck::bounded::BoundedOutcome::NoViolationFound { inputs_checked } => {
            assert!(inputs_checked >= 3, "checked {inputs_checked}");
        }
        other => panic!("even-a inputs must pass, got {other:?}"),
    }
    match xmltc_typecheck::bounded::bounded_typecheck(&t, &all_inputs, &tau2, 8, 200).unwrap() {
        xmltc_typecheck::bounded::BoundedOutcome::CounterExample { input, bad_output } => {
            // The smallest violator is root(a): 1 a-child → 1 b (odd).
            let dec = decode(&input, &enc_in).expect("counterexample must decode");
            assert_eq!(dec.children(dec.root()).len() % 2, 1);
            assert!(bad_output.is_some());
        }
        other => panic!("a* inputs must fail, got {other:?}"),
    }
}
